package arch

import "math"

// Multi-round reconfiguration model. The paper's density argument
// (Sections 1 and 4.1): real rule sets are often too big for one hardware
// unit, so either the unit is replicated or the rule set is partitioned
// into R groups and the input is streamed R times with a reconfiguration
// between rounds. Higher state density (Impala's 9.4× memory-cell
// reduction) means fewer rounds and higher effective throughput.
type ReconfigModel struct {
	Design Design
	// Unit is the hardware unit being reconfigured.
	Unit HardwareUnit
	// ConfigBandwidthGBs is the host-to-device configuration bandwidth in
	// GB/s (memory-mapped I/O or DMA; a PCIe-3 x8-class default of 8 GB/s
	// is used when zero).
	ConfigBandwidthGBs float64
}

// ReconfigReport describes the execution of one workload under
// reconfiguration rounds.
type ReconfigReport struct {
	// Rounds is the number of rule-set partitions (1 = fits the unit).
	Rounds int
	// ProcessSeconds is the time spent streaming the input (Rounds passes).
	ProcessSeconds float64
	// ConfigSeconds is the time spent loading bitstreams between rounds.
	ConfigSeconds float64
	// EffectiveGbps is input bits over total wall time — the line rate
	// divided by rounds, further degraded by configuration overhead.
	EffectiveGbps float64
}

// Evaluate computes the effective throughput for a workload of `states`
// STEs (after this design's transformation) over inputBytes of input.
func (m ReconfigModel) Evaluate(states, inputBytes int) ReconfigReport {
	bw := m.ConfigBandwidthGBs
	if bw == 0 {
		bw = 8
	}
	rounds := m.Unit.UnitsFor(states)
	if rounds < 1 {
		rounds = 1
	}
	lineGbps := m.Design.ThroughputGbps()
	process := float64(rounds) * float64(inputBytes) * 8 / (lineGbps * 1e9)
	// Per-round configuration: the unit's full bitstream image. Matching
	// bits + interconnect bits, approximated from the area model's block
	// counts (stride × 16×256 matching subarrays + 5 switch images per
	// 4-block group).
	blocks := (m.Unit.Capacity + 255) / 256
	var matchBits int
	switch m.Design.Arch {
	case Impala:
		matchBits = blocks * m.Design.Stride * 16 * 256
	default:
		matchBits = blocks * m.Design.Stride * 256 * 256
	}
	switchBits := (blocks + blocks/4 + 1) * 256 * 256
	configBytesPerRound := (matchBits + switchBits) / 8
	config := float64(rounds) * float64(configBytesPerRound) / (bw * 1e9)
	total := process + config
	eff := float64(inputBytes) * 8 / (total * 1e9)
	return ReconfigReport{
		Rounds:         rounds,
		ProcessSeconds: process,
		ConfigSeconds:  config,
		EffectiveGbps:  eff,
	}
}

// CrossoverStates returns the workload size (in original 8-bit states) at
// which design a's effective throughput first drops below design b's, given
// each design's state-overhead factor — or -1 if no crossover occurs below
// the cap. This is the density argument quantified: a faster design with a
// smaller effective capacity loses once its extra reconfiguration rounds
// outweigh its line-rate advantage.
func CrossoverStates(a, b ReconfigModel, overheadA, overheadB float64, inputBytes, capStates int) int {
	step := capStates / 512
	if step < 1 {
		step = 1
	}
	for s := step; s <= capStates; s += step {
		ra := a.Evaluate(int(math.Ceil(float64(s)*overheadA)), inputBytes)
		rb := b.Evaluate(int(math.Ceil(float64(s)*overheadB)), inputBytes)
		if ra.EffectiveGbps < rb.EffectiveGbps {
			return s
		}
	}
	return -1
}
