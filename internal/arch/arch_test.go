package arch

import (
	"math"
	"testing"

	"impala/internal/sim"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// Table 5: pipeline delays and operating frequencies.
func TestTable5Pipeline(t *testing.T) {
	ip := ImpalaPipeline()
	approx(t, "Impala state match", ip.StateMatchPs, 180, 0.01)
	approx(t, "Impala local", ip.LocalSwitchPs, 150, 0.01)
	approx(t, "Impala global", ip.GlobalSwitchPs, 170, 0.01)
	approx(t, "Impala max freq", ip.MaxFreqGHz(), 5.55, 0.01)
	approx(t, "Impala operating freq", ip.OperatingFreqGHz(), 5.0, 0.01)

	cp := CAPipeline()
	approx(t, "CA state match", cp.StateMatchPs, 220, 0.01)
	approx(t, "CA global", cp.GlobalSwitchPs, 249, 0.01)
	approx(t, "CA max freq", cp.MaxFreqGHz(), 4.01, 0.02)
	approx(t, "CA operating freq", cp.OperatingFreqGHz(), 3.61, 0.02)
}

// Figure 13: overall throughput of the design points.
func TestFig13Throughput(t *testing.T) {
	imp4 := Design{Arch: Impala, Bits: 4, Stride: 4}
	approx(t, "Impala 16-bit", imp4.ThroughputGbps(), 80, 0.5)
	imp2 := Design{Arch: Impala, Bits: 4, Stride: 2}
	approx(t, "Impala 8-bit", imp2.ThroughputGbps(), 40, 0.3)
	imp1 := Design{Arch: Impala, Bits: 4, Stride: 1}
	approx(t, "Impala 4-bit", imp1.ThroughputGbps(), 20, 0.2)
	ca8 := Design{Arch: CacheAutomaton, Bits: 8, Stride: 1}
	approx(t, "CA 8-bit", ca8.ThroughputGbps(), 28.8, 0.3)
	ap := Design{Arch: AutomataProcessor, Bits: 8, Stride: 1}
	approx(t, "AP 8-bit", ap.ThroughputGbps(), 1.06, 0.01)
	ap14 := Design{Arch: AutomataProcessor, Bits: 8, Stride: 1, Projected14nm: true}
	approx(t, "AP 14nm", ap14.ThroughputGbps(), 13.5, 0.1)

	// Headline claims: Impala 16-bit is 2.8× CA and 5.9× AP(14nm).
	approx(t, "Impala/CA", imp4.ThroughputGbps()/ca8.ThroughputGbps(), 2.78, 0.05)
	approx(t, "Impala/AP14", imp4.ThroughputGbps()/ap14.ThroughputGbps(), 5.9, 0.1)
}

// Figure 14: area for 32K STEs.
func TestFig14Area(t *testing.T) {
	imp := AreaBreakdown(Design{Arch: Impala, Bits: 4, Stride: 4}, 32*1024)
	ca := AreaBreakdown(Design{Arch: CacheAutomaton, Bits: 8, Stride: 1}, 32*1024)
	ap := AreaBreakdown(Design{Arch: AutomataProcessor, Bits: 8, Stride: 1}, 32*1024)

	// State-matching: Impala 5.2× smaller than CA, 34.5× smaller than AP.
	approx(t, "SM CA/Impala", ca.StateMatchMM2/imp.StateMatchMM2, 5.2, 0.1)
	approx(t, "SM AP/Impala", ap.StateMatchMM2/imp.StateMatchMM2, 34.5, 0.1)
	// Totals: paper reports 1.34× and 3.9×; our interconnect model gives
	// ~1.28× for CA (we model identical switch fabrics) and 3.9× for AP by
	// construction.
	ratioCA := ca.TotalMM2() / imp.TotalMM2()
	if ratioCA < 1.2 || ratioCA > 1.45 {
		t.Fatalf("total CA/Impala = %v, want ~1.28-1.34", ratioCA)
	}
	approx(t, "total AP/Impala", ap.TotalMM2()/imp.TotalMM2(), 3.9, 0.05)

	// Absolute sanity: Impala state matching for 32K strided states is
	// 128 blocks × 4 subarrays × 453 µm².
	approx(t, "Impala SM mm²", imp.StateMatchMM2, 128*4*453.0/1e6, 1e-9)
}

func TestAreaZeroStates(t *testing.T) {
	b := AreaBreakdown(Design{Arch: Impala, Bits: 4, Stride: 4}, 0)
	if b.TotalMM2() != 0 {
		t.Fatal("zero states should have zero area")
	}
}

func TestStandardUnit(t *testing.T) {
	hu := StandardUnit(Design{Arch: Impala, Bits: 4, Stride: 4})
	if hu.Capacity != 32*1024 {
		t.Fatalf("capacity = %d", hu.Capacity)
	}
	if hu.UnitsFor(1) != 1 || hu.UnitsFor(32*1024) != 1 || hu.UnitsFor(32*1024+1) != 2 {
		t.Fatal("UnitsFor rounding wrong")
	}
	if hu.UnitsFor(0) != 0 {
		t.Fatal("UnitsFor(0) != 0")
	}
	ap := StandardUnit(Design{Arch: AutomataProcessor, Bits: 8, Stride: 1})
	if ap.Capacity != 48*1024 {
		t.Fatalf("AP capacity = %d", ap.Capacity)
	}
}

func TestThroughputPerAreaOrdering(t *testing.T) {
	// For a benchmark with modest striding overhead, Impala 16-bit should
	// dominate CA 8-bit and the AP in Gbps/mm² (the Figure 11 headline).
	states := 10000
	imp := ThroughputPerArea(Design{Arch: Impala, Bits: 4, Stride: 4}, int(float64(states)*1.7))
	ca := ThroughputPerArea(Design{Arch: CacheAutomaton, Bits: 8, Stride: 1}, states)
	ap := ThroughputPerArea(Design{Arch: AutomataProcessor, Bits: 8, Stride: 1, Projected14nm: true}, states)
	if imp <= ca || ca <= ap {
		t.Fatalf("ordering broken: impala=%v ca=%v ap=%v", imp, ca, ap)
	}
	ratio := imp / ca
	if ratio < 1.5 || ratio > 4.5 {
		t.Fatalf("Impala/CA throughput-per-area = %v, expected around 2-3.7×", ratio)
	}
}

func TestEnergyModelBasics(t *testing.T) {
	blocks, g4s := OccupancyFor(1000)
	if blocks != 4 || g4s != 1 {
		t.Fatalf("occupancy = %d/%d", blocks, g4s)
	}
	m := EnergyModel{
		Design:         Design{Arch: Impala, Bits: 4, Stride: 4},
		OccupiedBlocks: blocks,
		OccupiedG4s:    g4s,
	}
	stats := ActivityStats{
		Cycles:                  1000,
		LocalSwitchActivations:  2000,
		GlobalSwitchActivations: 100,
		CrossBlockSignals:       150,
	}
	r := m.Evaluate(stats, 2000)
	if r.TotalPJ <= 0 || r.PJPerByte <= 0 || r.AvgPowerMW <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if got := r.StateMatchPJ + r.LocalSwitchPJ + r.GlobalSwitchPJ + r.WirePJ; math.Abs(got-r.TotalPJ) > 1e-9 {
		t.Fatal("total does not sum")
	}
	// Zero cycles -> zero report.
	if z := m.Evaluate(ActivityStats{}, 100); z.TotalPJ != 0 {
		t.Fatal("zero-cycle run should cost nothing")
	}
}

// The CA design at the same occupancy must burn more state-matching energy
// per byte than Impala 16-bit (the core of the Figure 12 claim).
func TestEnergyCAvsImpala(t *testing.T) {
	const inputBytes = 100000
	// Impala 16-bit: 2 bytes/cycle; overhead 1.39× states.
	impBlocks, impG4 := OccupancyFor(14000)
	imp := EnergyModel{Design: Design{Arch: Impala, Bits: 4, Stride: 4}, OccupiedBlocks: impBlocks, OccupiedG4s: impG4}
	impCycles := int64(inputBytes / 2)
	impStats := ActivityStats{
		Cycles:                  impCycles,
		LocalSwitchActivations:  impCycles * int64(impBlocks) / 4, // ~25% blocks active
		GlobalSwitchActivations: impCycles / 10,
		CrossBlockSignals:       impCycles / 10,
	}
	caBlocks, caG4 := OccupancyFor(10000)
	ca := EnergyModel{Design: Design{Arch: CacheAutomaton, Bits: 8, Stride: 1}, OccupiedBlocks: caBlocks, OccupiedG4s: caG4}
	caCycles := int64(inputBytes)
	caStats := ActivityStats{
		Cycles:                  caCycles,
		LocalSwitchActivations:  caCycles * int64(caBlocks) / 4,
		GlobalSwitchActivations: caCycles / 10,
		CrossBlockSignals:       caCycles / 10,
	}
	re := imp.Evaluate(impStats, inputBytes)
	rc := ca.Evaluate(caStats, inputBytes)
	ratio := rc.PJPerByte / re.PJPerByte
	if ratio <= 1.0 {
		t.Fatalf("CA should cost more energy/byte, ratio = %v", ratio)
	}
	t.Logf("energy/byte ratio CA/Impala = %.2f (paper: 1.7)", ratio)
	powerRatio := rc.AvgPowerMW / re.AvgPowerMW
	if powerRatio <= 1.0 {
		t.Fatalf("CA should burn more power, ratio = %v", powerRatio)
	}
	t.Logf("power ratio CA/Impala = %.2f (paper: 1.22)", powerRatio)
}

func TestFPGAConstants(t *testing.T) {
	imp := Design{Arch: Impala, Bits: 4, Stride: 4}
	if r := imp.FreqGHz() / FPGAYang.ClockGHz; r < 20 || r > 25 {
		t.Fatalf("freq ratio vs Yang = %v, want ~23.6 (paper: ~20×)", r)
	}
	if r := imp.ThroughputGbps() / FPGAYamagaki.ThroughputGbps; r < 18 || r > 23 {
		t.Fatalf("throughput ratio vs Yamagaki = %v (paper: ~20×)", r)
	}
}

func TestDesignString(t *testing.T) {
	d := Design{Arch: Impala, Bits: 4, Stride: 4}
	if d.String() != "Impala (16-bit)" {
		t.Fatalf("String = %q", d.String())
	}
	if CacheAutomaton.String() != "Cache Automaton" || AutomataProcessor.String() != "AP" {
		t.Fatal("arch names wrong")
	}
}

func TestSystemModel(t *testing.T) {
	// Paper Section 6: 5 GHz 4-bit engine, 1 MHz interrupt -> 5000
	// cycles/interrupt -> 2.5 KB input buffer.
	sys := DefaultSystem(Design{Arch: Impala, Bits: 4, Stride: 1})
	rep := sys.Analyze(0)
	approx(t, "cycles/interrupt", rep.CyclesPerInterrupt, 5000, 20)
	approx(t, "IB bytes", rep.IBBytes, 2500, 10)
	if sys.OBBytes() != 2048 {
		t.Fatalf("OB bytes = %d, want 2048", sys.OBBytes())
	}
	// OB budget: 512 reports per 5000 cycles.
	approx(t, "max reports/cycle", rep.MaxReportsPerCycle, 0.1024, 0.001)
	if over := sys.Analyze(0.2); !over.OBOverflow {
		t.Fatal("0.2 reports/cycle should overflow the OB budget")
	}
	if ok := sys.Analyze(0.05); ok.OBOverflow {
		t.Fatal("0.05 reports/cycle should fit")
	}
}

func TestSimulateOB(t *testing.T) {
	sys := DefaultSystem(Design{Arch: Impala, Bits: 4, Stride: 4})
	// 5 GHz / 1 MHz = 5000 cycles per interrupt; OB holds 512 entries.
	mk := func(cycle int) sim.Report { return sim.Report{BitPos: cycle * 16} }
	// 600 reports burst within the first period: 512 fit, 88 drop.
	var burst []sim.Report
	for i := 0; i < 600; i++ {
		burst = append(burst, mk(i))
	}
	res := sys.SimulateOB(burst, 10000)
	if res.Dropped != 88 || res.Delivered != 512 || res.PeakOccupancy != 512 {
		t.Fatalf("burst result = %+v", res)
	}
	// The same 600 reports spread over two periods: no drops.
	var spread []sim.Report
	for i := 0; i < 600; i++ {
		spread = append(spread, mk(i*15))
	}
	res = sys.SimulateOB(spread, 10000)
	if res.Dropped != 0 || res.Delivered != 600 {
		t.Fatalf("spread result = %+v", res)
	}
	if res.PeakOccupancy == 0 || res.PeakOccupancy > 512 {
		t.Fatalf("peak = %d", res.PeakOccupancy)
	}
	// Empty stream.
	if z := sys.SimulateOB(nil, 100); z.Delivered != 0 || z.Dropped != 0 {
		t.Fatalf("empty = %+v", z)
	}
}

func TestReconfigModel(t *testing.T) {
	imp := ReconfigModel{
		Design: Design{Arch: Impala, Bits: 4, Stride: 4},
		Unit:   StandardUnit(Design{Arch: Impala, Bits: 4, Stride: 4}),
	}
	small := imp.Evaluate(10000, 10<<20)
	if small.Rounds != 1 {
		t.Fatalf("small rounds = %d", small.Rounds)
	}
	// A fitting workload runs below line rate only by the one-time
	// configuration cost (a 32K-unit bitstream is ~26 MB, non-trivial
	// against a 10 MB stream).
	if small.EffectiveGbps < 50 || small.EffectiveGbps > 80 {
		t.Fatalf("small eff = %v", small.EffectiveGbps)
	}
	big := imp.Evaluate(100*1024, 10<<20)
	if big.Rounds != 4 {
		t.Fatalf("big rounds = %d", big.Rounds)
	}
	if big.EffectiveGbps >= small.EffectiveGbps/3 {
		t.Fatalf("4 rounds should quarter the throughput: %v vs %v", big.EffectiveGbps, small.EffectiveGbps)
	}
	if big.ProcessSeconds <= 0 || big.ConfigSeconds <= 0 {
		t.Fatalf("times = %+v", big)
	}
}

func TestReconfigCrossover(t *testing.T) {
	// A hypothetical fast-but-tiny design must eventually lose to a
	// slower-but-denser one.
	fast := ReconfigModel{
		Design: Design{Arch: Impala, Bits: 4, Stride: 4},
		Unit:   HardwareUnit{Design: Design{Arch: Impala, Bits: 4, Stride: 4}, Capacity: 8 * 1024},
	}
	dense := ReconfigModel{
		Design: Design{Arch: CacheAutomaton, Bits: 8, Stride: 1},
		Unit:   HardwareUnit{Design: Design{Arch: CacheAutomaton, Bits: 8, Stride: 1}, Capacity: 64 * 1024},
	}
	x := CrossoverStates(fast, dense, 1.0, 1.0, 10<<20, 1<<20)
	if x <= 0 {
		t.Fatal("no crossover found")
	}
	// Below the crossover the fast design must win.
	rf := fast.Evaluate(x/2, 10<<20)
	rd := dense.Evaluate(x/2, 10<<20)
	if rf.EffectiveGbps < rd.EffectiveGbps {
		t.Fatalf("fast should win below crossover: %v vs %v", rf.EffectiveGbps, rd.EffectiveGbps)
	}
}
