// Capsule-level observability: the machine's switch-activity accumulators —
// the inputs of the energy model — mirrored into live process counters so a
// long-running stream server exposes the same per-cycle activity the paper's
// energy evaluation measures offline. Disabled by default; one atomic
// pointer load per cycle when off, a handful of atomic adds when on, zero
// allocation either way.
package arch

import (
	"sync/atomic"

	"impala/internal/obs"
)

type archMetrics struct {
	sessions *obs.Counter // arch_sessions_opened_total
	cycles   *obs.Counter // arch_cycles_total
	local    *obs.Counter // arch_local_switch_activations_total
	global   *obs.Counter // arch_global_switch_activations_total
	cross    *obs.Counter // arch_cross_block_signals_total
}

var archMetricsPtr atomic.Pointer[archMetrics]

// EnableMetrics registers the capsule-level machine's instruments in reg
// and turns live publication on for every machine session in the process:
//
//	arch_sessions_opened_total           machine sessions created
//	arch_cycles_total                    hardware cycles executed
//	arch_local_switch_activations_total  local-switch partitions driven
//	arch_global_switch_activations_total global switches driven
//	arch_cross_block_signals_total       enables that crossed block bounds
//
// The byte/report/stream counters of machine sessions are covered by the
// shared sim instruments (machine sessions run through sim.Session.Feed).
// EnableMetrics(nil) disables publication again (the default).
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		archMetricsPtr.Store(nil)
		return
	}
	archMetricsPtr.Store(&archMetrics{
		sessions: reg.Counter("arch_sessions_opened_total"),
		cycles:   reg.Counter("arch_cycles_total"),
		local:    reg.Counter("arch_local_switch_activations_total"),
		global:   reg.Counter("arch_global_switch_activations_total"),
		cross:    reg.Counter("arch_cross_block_signals_total"),
	})
}
