package arch

import "impala/internal/interconnect"

// Energy model (Section 8.5, Figure 12).
//
// State-matching arrays cannot be power-gated cycle-by-cycle (the match and
// the next-potential-state computation happen simultaneously, so the
// potential next states are not known in advance): every *occupied* matching
// subarray burns read power every cycle. Unoccupied arrays are gated off.
// Switch subarrays are activated only when a state they serve is active
// (their word lines are driven by active states). Cross-block signals pay a
// wire-energy cost proportional to the design's global wire length — the
// density advantage of Impala directly shows up here.

// WireEnergyPJPerMMBit is the estimated energy to drive one signal over one
// mm of global wire at 14nm/0.8V (typical published range 0.1–0.3 pJ/bit/mm;
// we use the midpoint).
const WireEnergyPJPerMMBit = 0.2

// ActivityStats aggregates per-cycle switch activity of a run, collected by
// the capsule-level machine (or derivable from the functional simulator plus
// a placement).
type ActivityStats struct {
	Cycles int64
	// LocalSwitchActivations sums, over cycles, the number of local-switch
	// partitions with at least one driving (active) state.
	LocalSwitchActivations int64
	// GlobalSwitchActivations sums, over cycles, the number of global
	// switches with at least one driving port node.
	GlobalSwitchActivations int64
	// CrossBlockSignals counts enable signals that crossed local-switch
	// boundaries (drove global wires).
	CrossBlockSignals int64
}

// EnergyModel evaluates a design's energy for a run.
type EnergyModel struct {
	Design Design
	// OccupiedBlocks is the number of 256-state blocks holding states.
	OccupiedBlocks int
	// OccupiedG4s is the number of G4 groups in use.
	OccupiedG4s int
}

// EnergyReport is the model output.
type EnergyReport struct {
	StateMatchPJ   float64
	LocalSwitchPJ  float64
	GlobalSwitchPJ float64
	WirePJ         float64
	TotalPJ        float64
	// PJPerSymbol is energy per processed symbol, i.e. per cycle — the
	// Figure 12 left metric. Note the paper's convention: Impala 16-bit's
	// "symbol" is a 16-bit chunk while CA's is one byte, so the per-byte
	// ratio is twice the per-symbol ratio.
	PJPerSymbol float64
	// PJPerByte is energy per input byte (geometry-independent variant).
	PJPerByte float64
	// AvgPowerMW is total energy over total run time (Figure 12 right).
	AvgPowerMW float64
}

// matchSubarraysPerBlock returns how many matching subarrays serve one
// 256-state block.
func (m EnergyModel) matchSubarraysPerBlock() float64 {
	switch m.Design.Arch {
	case Impala:
		return float64(m.Design.Stride)
	case CacheAutomaton:
		return float64(m.Design.Stride)
	default:
		panic("arch: energy model supports Impala and CA only")
	}
}

func (m EnergyModel) matchSubarrayPowerMW() float64 {
	if m.Design.Arch == Impala {
		return ImpalaMatchSubarray.ReadPowMW
	}
	return CAMatchSubarray.ReadPowMW
}

func (m EnergyModel) globalWireMM() float64 {
	if m.Design.Arch == Impala {
		return ImpalaGlobalWire / WireDelayPsPerMM
	}
	return CAGlobalWireMM
}

// Evaluate computes the energy report for a run over inputBytes bytes.
func (m EnergyModel) Evaluate(stats ActivityStats, inputBytes int) EnergyReport {
	var r EnergyReport
	if stats.Cycles == 0 {
		return r
	}
	cycleNS := 1.0 / m.Design.FreqGHz()
	// State matching: all occupied subarrays, every cycle.
	smPerCycleMW := float64(m.OccupiedBlocks) * m.matchSubarraysPerBlock() * m.matchSubarrayPowerMW()
	r.StateMatchPJ = smPerCycleMW * cycleNS * float64(stats.Cycles)
	// Switches: only on activation.
	r.LocalSwitchPJ = float64(stats.LocalSwitchActivations) * SwitchSubarray.ReadPowMW * cycleNS
	r.GlobalSwitchPJ = float64(stats.GlobalSwitchActivations) * SwitchSubarray.ReadPowMW * cycleNS
	// Wires: cross-block enables drive global wires.
	r.WirePJ = float64(stats.CrossBlockSignals) * WireEnergyPJPerMMBit * m.globalWireMM()
	r.TotalPJ = r.StateMatchPJ + r.LocalSwitchPJ + r.GlobalSwitchPJ + r.WirePJ
	r.PJPerSymbol = r.TotalPJ / float64(stats.Cycles)
	if inputBytes > 0 {
		r.PJPerByte = r.TotalPJ / float64(inputBytes)
	}
	r.AvgPowerMW = r.TotalPJ / (cycleNS * float64(stats.Cycles))
	return r
}

// OccupancyFor derives block/G4 occupancy from a state count (uniform
// packing assumption for analytical comparisons without a placement).
func OccupancyFor(states int) (blocks, g4s int) {
	blocks = (states + interconnect.LocalSwitchSize - 1) / interconnect.LocalSwitchSize
	g4s = (blocks + interconnect.LocalsPerG4 - 1) / interconnect.LocalsPerG4
	return blocks, g4s
}
