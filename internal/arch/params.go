// Package arch models Impala's hardware: the 14nm subarray parameters the
// paper publishes (Table 3), the pipeline delay and operating-frequency
// derivation (Table 5), area (Figure 14), throughput (Figure 13), capacity
// and replication, energy/power (Figure 12), and a capsule-level machine
// that executes compiled bitstreams — the architectural twin of the
// functional simulator.
package arch

import "fmt"

// SubarrayParams describes one memory subarray design point as reported by
// the paper's memory compiler (Table 3, 14nm, 0.8V, peripheral overhead
// included).
type SubarrayParams struct {
	Name      string
	CellType  string  // "6T" or "8T"
	Rows      int     // word lines
	Cols      int     // bit lines
	DelayPs   float64 // read access latency
	ReadPowMW float64 // read power
	AreaUM2   float64 // area in µm²
}

// Table 3 of the paper. The Impala state-matching subarray is 16 rows of
// 256 columns (one row per nibble value; each column is one capsule
// dimension of one state): 453 µm² at 180 ps — the short-bit-line design the
// architecture is built on. The CA state-matching subarray is the classic
// 256×256; the interconnect switch is an 8T 256×256 array (8T is faster but
// bigger).
var (
	ImpalaMatchSubarray = SubarrayParams{
		Name: "state-matching (Impala)", CellType: "6T",
		Rows: 16, Cols: 256, DelayPs: 180, ReadPowMW: 0.58, AreaUM2: 453,
	}
	CAMatchSubarray = SubarrayParams{
		Name: "state-matching (CA)", CellType: "6T",
		Rows: 256, Cols: 256, DelayPs: 220, ReadPowMW: 5.52, AreaUM2: 9394,
	}
	SwitchSubarray = SubarrayParams{
		Name: "interconnect", CellType: "8T",
		Rows: 256, Cols: 256, DelayPs: 150, ReadPowMW: 6.07, AreaUM2: 20102,
	}
)

// Wire model (Section 8.2): SPICE-modelled global wire delay, and the
// distance between SRAM arrays and the global switch in each design. The CA
// slice is 3.19mm × 3mm, so CA's global wires run ~1.5mm; Impala's
// state-matching footprint is ~5× smaller, giving ~0.3mm (20 ps).
const (
	WireDelayPsPerMM = 66.0
	CAGlobalWireMM   = 1.5
	ImpalaGlobalWire = 20.0 // ps, directly as the paper states
	// FreqDerate is the paper's 10% operating-frequency safety margin.
	FreqDerate = 0.9
)

// Pipeline holds the per-stage delays of a spatial automata architecture
// (Table 5). The cycle time is set by the slowest stage.
type Pipeline struct {
	StateMatchPs   float64
	LocalSwitchPs  float64
	GlobalSwitchPs float64
}

// ImpalaPipeline returns Impala's pipeline. Striding does not change stage
// delays: all capsule columns are read in parallel and only the capsule AND
// gate grows (a <4 ps effect the paper neglects as <2% of the stage).
func ImpalaPipeline() Pipeline {
	return Pipeline{
		StateMatchPs:   ImpalaMatchSubarray.DelayPs,
		LocalSwitchPs:  SwitchSubarray.DelayPs,
		GlobalSwitchPs: SwitchSubarray.DelayPs + ImpalaGlobalWire,
	}
}

// CAPipeline returns the Cache Automaton pipeline.
func CAPipeline() Pipeline {
	return Pipeline{
		StateMatchPs:   CAMatchSubarray.DelayPs,
		LocalSwitchPs:  SwitchSubarray.DelayPs,
		GlobalSwitchPs: SwitchSubarray.DelayPs + CAGlobalWireMM*WireDelayPsPerMM,
	}
}

// SlowestStagePs returns the critical stage delay.
func (p Pipeline) SlowestStagePs() float64 {
	m := p.StateMatchPs
	if p.LocalSwitchPs > m {
		m = p.LocalSwitchPs
	}
	if p.GlobalSwitchPs > m {
		m = p.GlobalSwitchPs
	}
	return m
}

// MaxFreqGHz returns 1/slowest-stage in GHz.
func (p Pipeline) MaxFreqGHz() float64 { return 1000.0 / p.SlowestStagePs() }

// OperatingFreqGHz returns the derated operating frequency (Table 5's
// "Operating Freq.": Impala 5 GHz, CA 3.6 GHz).
func (p Pipeline) OperatingFreqGHz() float64 { return FreqDerate * p.MaxFreqGHz() }

// The Automata Processor's frequencies (Table 5): as built in 50nm DRAM,
// and ideally projected to 14nm.
const (
	APFreqGHz     = 0.133
	APFreq14nmGHz = 1.69
)

// FPGA multi-stride comparison points (Table 6): published clock rates and
// throughputs of the two best FPGA solutions at a 16-bit/cycle processing
// rate on Snort.
type FPGAPoint struct {
	Name           string
	BitsPerCycle   int
	ClockGHz       float64
	ThroughputGbps float64
}

var (
	FPGAYang     = FPGAPoint{Name: "Yang et al. (Virtex-5)", BitsPerCycle: 16, ClockGHz: 0.212, ThroughputGbps: 3.47}
	FPGAYamagaki = FPGAPoint{Name: "Yamagaki et al. (Stratix II)", BitsPerCycle: 16, ClockGHz: 0.239, ThroughputGbps: 3.91}
)

// Architecture identifies a spatial automata processing design family.
type Architecture int

const (
	Impala Architecture = iota
	CacheAutomaton
	AutomataProcessor
)

func (a Architecture) String() string {
	switch a {
	case Impala:
		return "Impala"
	case CacheAutomaton:
		return "Cache Automaton"
	case AutomataProcessor:
		return "AP"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Design is a concrete design point: an architecture at a symbol geometry.
type Design struct {
	Arch Architecture
	// Bits per sub-symbol (4 for Impala, 8 for CA/AP).
	Bits int
	// Stride is sub-symbols per cycle.
	Stride int
	// Projected14nm applies only to the AP: use the ideal 14nm frequency
	// projection instead of the 50nm silicon.
	Projected14nm bool
}

// BitsPerCycle returns input bits consumed per cycle.
func (d Design) BitsPerCycle() int { return d.Bits * d.Stride }

// FreqGHz returns the design's operating frequency.
func (d Design) FreqGHz() float64 {
	switch d.Arch {
	case Impala:
		return ImpalaPipeline().OperatingFreqGHz()
	case CacheAutomaton:
		return CAPipeline().OperatingFreqGHz()
	case AutomataProcessor:
		if d.Projected14nm {
			return APFreq14nmGHz
		}
		return APFreqGHz
	default:
		panic("arch: unknown architecture")
	}
}

// ThroughputGbps returns the deterministic line rate: frequency × bits per
// cycle (Figure 13). Spatial architectures process one chunk per cycle
// independent of input content.
func (d Design) ThroughputGbps() float64 {
	return d.FreqGHz() * float64(d.BitsPerCycle())
}

// String names the design point like the paper's figures.
func (d Design) String() string {
	return fmt.Sprintf("%s (%d-bit)", d.Arch, d.BitsPerCycle())
}
