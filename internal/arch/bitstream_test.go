package arch_test

import (
	"bytes"
	"math/rand"
	"testing"

	"impala/internal/arch"
	"impala/internal/automata"
	"impala/internal/core"
	"impala/internal/place"
	"impala/internal/sim"
)

func TestBitstreamRoundTrip(t *testing.T) {
	n := automata.New(8, 1)
	n.AddLiteral("config", automata.StartAllInput, 1)
	n.AddLiteral("me", automata.StartOfData, 2)
	m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 4})

	var buf bytes.Buffer
	if err := m.WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := arch.ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bits != m.Bits || back.Stride != m.Stride || len(back.Groups) != len(m.Groups) {
		t.Fatal("shape changed")
	}
	// The reloaded machine must run identically.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		input := make([]byte, 1+r.Intn(50))
		for i := range input {
			input[i] = "configme xyz"[r.Intn(12)]
		}
		r1, s1 := m.Run(input)
		r2, s2 := back.Run(input)
		if !sim.SameReports(r1, r2) {
			t.Fatalf("reloaded machine diverges on %q", input)
		}
		if s1 != s2 {
			t.Fatalf("activity stats diverge: %+v vs %+v", s1, s2)
		}
	}
}

func TestBitstreamRoundTripHierarchical(t *testing.T) {
	// Chain > 1024 states: exercises G16 serialization.
	n := automata.New(8, 1)
	prev := automata.StateID(-1)
	for i := 0; i < 1100; i++ {
		kind := automata.StartNone
		if i == 0 {
			kind = automata.StartAllInput
		}
		id := n.AddState(automata.State{
			Match:        automata.MatchSet{automata.Rect{automata.Domain(8)}},
			Start:        kind,
			Report:       i == 1099,
			ReportCode:   9,
			ReportOffset: 1,
		})
		if prev >= 0 {
			n.AddEdge(prev, id)
		}
		prev = id
	}
	p, err := place.Place(n, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := arch.Build(n, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := arch.ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 1500)
	r1, _ := m.Run(input)
	r2, _ := back.Run(input)
	if !sim.SameReports(r1, r2) {
		t.Fatal("hierarchical reload diverges")
	}
}

func TestBitstreamRejectsGarbage(t *testing.T) {
	if _, err := arch.ReadConfig(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := arch.ReadConfig(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated valid prefix.
	n := automata.New(8, 1)
	n.AddLiteral("x", automata.StartAllInput, 1)
	m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 2})
	var buf bytes.Buffer
	if err := m.WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.ReadConfig(bytes.NewReader(buf.Bytes()[:100])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
