package arch

import (
	"fmt"

	"impala/internal/automata"
	"impala/internal/bitvec"
	"impala/internal/interconnect"
	"impala/internal/place"
	"impala/internal/sim"
)

// Machine is the capsule-level execution model of a configured Impala (or
// CA-mode) device: per-group state-matching subarray images plus
// interconnect switch images, executed exactly the way the hardware
// pipeline operates — read one row per dimension per block, AND across a
// capsule's columns, AND with the enable vector produced by the wired-OR
// switch fabric. It is the architectural twin of the functional simulator
// and must produce identical reports for any input.
//
// Groups are either plain G4s or (for components beyond 1024 states)
// hierarchical G16s with a hyper switch — the paper's higher-level-switch
// extension.
type Machine struct {
	// Bits and Stride define the symbol geometry.
	Bits, Stride int
	// Groups are the configured switch groups.
	Groups []*Group
}

// Group is one switch group's full configuration.
type Group struct {
	// Match[block][dim] is a (domain-size × 256) subarray image: cell
	// (v, c) is 1 iff the state in block slot c accepts sub-symbol v at
	// dimension dim.
	Match [][]*bitvec.Matrix
	// Switches is the crossbar configuration (G4 or G16).
	Switches interconnect.Fabric
	// Per-slot start/occupancy vectors.
	always, even, anchored, occupied bitvec.Words
	// report metadata per slot (report counters/IDs in hardware).
	reports []slotReport
	// states maps slots back to automaton state IDs (debug/report identity).
	states []automata.StateID
}

type slotReport struct {
	report bool
	code   int
	offset int
}

// Build configures a machine from a capsule-legal automaton and a valid
// placement of it.
func Build(n *automata.NFA, p *place.Placement) (*Machine, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("arch: Build input invalid: %w", err)
	}
	if !p.Valid() {
		return nil, fmt.Errorf("arch: placement has %d uncovered transitions", p.TotalUncovered)
	}
	m := &Machine{Bits: n.Bits, Stride: n.Stride}
	domain := automata.DomainSize(n.Bits)

	// Map every state to (group, slot).
	type loc struct {
		group int
		slot  int
	}
	locOf := make(map[automata.StateID]loc, n.NumStates())
	for gi, g := range p.G4s {
		for slot, id := range g.Slots {
			if id >= 0 {
				locOf[id] = loc{group: gi, slot: slot}
			}
		}
	}
	if len(locOf) != n.NumStates() {
		return nil, fmt.Errorf("arch: placement covers %d of %d states", len(locOf), n.NumStates())
	}

	for _, gp := range p.G4s {
		var fabric interconnect.Fabric
		if gp.Hierarchical {
			fabric = interconnect.NewG16()
		} else {
			fabric = interconnect.NewG4()
		}
		slots := fabric.Slots()
		if len(gp.Slots) != slots {
			return nil, fmt.Errorf("arch: placement group has %d slots, fabric %d", len(gp.Slots), slots)
		}
		blocks := slots / interconnect.LocalSwitchSize
		u := &Group{
			Switches: fabric,
			Match:    make([][]*bitvec.Matrix, blocks),
			always:   bitvec.NewWords(slots),
			even:     bitvec.NewWords(slots),
			anchored: bitvec.NewWords(slots),
			occupied: bitvec.NewWords(slots),
			reports:  make([]slotReport, slots),
			states:   make([]automata.StateID, slots),
		}
		for b := 0; b < blocks; b++ {
			u.Match[b] = make([]*bitvec.Matrix, n.Stride)
			for d := 0; d < n.Stride; d++ {
				u.Match[b][d] = bitvec.NewMatrix(domain, interconnect.LocalSwitchSize)
			}
		}
		for i := range u.states {
			u.states[i] = -1
		}
		m.Groups = append(m.Groups, u)
	}

	for i := range n.States {
		s := &n.States[i]
		cover := s.Match.Normalize()
		if len(cover) != 1 {
			return nil, fmt.Errorf("arch: state %d is not capsule-legal (%d rects); run Refine first", i, len(cover))
		}
		rect := cover[0]
		l := locOf[automata.StateID(i)]
		u := m.Groups[l.group]
		block, col := l.slot/interconnect.LocalSwitchSize, l.slot%interconnect.LocalSwitchSize
		for d := 0; d < n.Stride; d++ {
			for _, v := range rect[d].Values() {
				u.Match[block][d].Set(int(v), col)
			}
		}
		u.occupied.Set(l.slot)
		u.states[l.slot] = automata.StateID(i)
		switch s.Start {
		case automata.StartAllInput:
			u.always.Set(l.slot)
		case automata.StartOfData:
			u.anchored.Set(l.slot)
		case automata.StartEven:
			u.even.Set(l.slot)
		}
		if s.Report {
			u.reports[l.slot] = slotReport{report: true, code: s.ReportCode, offset: s.ReportOffset}
		}
		for _, t := range s.Out {
			tl := locOf[t]
			if tl.group != l.group {
				return nil, fmt.Errorf("arch: edge %d->%d crosses switch groups", i, t)
			}
			if err := u.Switches.Connect(l.slot, tl.slot); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// groupState is one switch group's per-stream working set.
type groupState struct {
	active, prev, enable bitvec.Words
	matchVec             bitvec.Words
}

// machineCore is the capsule-level implementation of the sim.Core step
// interface: the immutable Machine configuration plus per-stream group
// working sets and the switch-activity accumulators. It has no single
// whole-automaton state vector, so the per-cycle tracer is ignored.
type machineCore struct {
	m        *Machine
	gs       []groupState
	activity ActivityStats
}

// Geometry implements sim.Core.
func (c *machineCore) Geometry() (bits, stride int) { return c.m.Bits, c.m.Stride }

// ResetState implements sim.Core: it clears every group's inter-cycle
// active set and the stream's activity counters.
func (c *machineCore) ResetState() {
	for i := range c.gs {
		c.gs[i].prev.ClearAll()
	}
	c.activity = ActivityStats{}
}

// StepCycle implements sim.Core: one cycle of the hardware pipeline —
// interconnect propagation, row reads + capsule AND per group, reporting.
func (c *machineCore) StepCycle(chunk []byte, t int, limitBits int, sink sim.ReportSink, _ sim.Tracer) (int, int) {
	m := c.m
	S := m.Stride
	enabled, active := 0, 0
	am := archMetricsPtr.Load()
	var a0 ActivityStats
	if am != nil {
		a0 = c.activity
	}
	for gi, u := range m.Groups {
		st := &c.gs[gi]
		// --- interconnect phase: propagate previous active states ---
		u.Switches.Propagate(st.prev, st.enable)
		lb, gr, cs := u.Switches.Activity(st.prev)
		c.activity.LocalSwitchActivations += int64(lb)
		c.activity.GlobalSwitchActivations += int64(gr)
		c.activity.CrossBlockSignals += int64(cs)
		// Start kinds.
		for w := range st.enable {
			st.enable[w] |= u.always[w]
			if t == 0 {
				st.enable[w] |= u.anchored[w]
			}
			if t%2 == 0 {
				st.enable[w] |= u.even[w]
			}
		}

		// --- state-match phase: row reads + capsule AND ---
		for w := range st.matchVec {
			st.matchVec[w] = ^uint64(0)
		}
		for b := range u.Match {
			base := b * interconnect.LocalSwitchSize / 64
			for d := 0; d < S; d++ {
				row := u.Match[b][d].Row(int(chunk[d]))
				for w, word := range row {
					st.matchVec[base+w] &= word
				}
			}
		}
		// active = enable ∧ match ∧ occupied.
		for w := range st.active {
			st.active[w] = st.enable[w] & st.matchVec[w] & u.occupied[w]
		}

		// --- reporting ---
		st.active.ForEach(func(slot int) {
			r := u.reports[slot]
			if !r.report {
				return
			}
			bitPos := (t*S + r.offset) * m.Bits
			if limitBits < 0 || bitPos <= limitBits {
				sink(sim.Report{BitPos: bitPos, Code: r.code, State: u.states[slot]})
			}
		})

		enabled += st.enable.Count()
		active += st.active.Count()
		st.prev, st.active = st.active, st.prev
	}
	c.activity.Cycles++
	if am != nil {
		am.cycles.Inc()
		am.local.Add(c.activity.LocalSwitchActivations - a0.LocalSwitchActivations)
		am.global.Add(c.activity.GlobalSwitchActivations - a0.GlobalSwitchActivations)
		am.cross.Add(c.activity.CrossBlockSignals - a0.CrossBlockSignals)
	}
	return enabled, active
}

// Session is one incremental input stream over the configured machine: the
// immutable Machine is shared, the per-stream state (group enable/active
// vectors, carried sub-symbols, activity counters) lives here. It
// delegates chunking, odd-nibble carry and flush semantics to the same
// sim.Session core the functional engines use.
type Session struct {
	core  *machineCore
	inner *sim.Session
}

// NewSession prepares a streaming session over the machine; sink receives
// reports as they fire (nil to run for statistics only). Many sessions may
// run concurrently over one Machine.
func (m *Machine) NewSession(sink sim.ReportSink) *Session {
	if am := archMetricsPtr.Load(); am != nil {
		am.sessions.Inc()
	}
	core := &machineCore{m: m, gs: make([]groupState, len(m.Groups))}
	for i := range core.gs {
		slots := m.Groups[i].Switches.Slots()
		core.gs[i] = groupState{
			active:   bitvec.NewWords(slots),
			prev:     bitvec.NewWords(slots),
			enable:   bitvec.NewWords(slots),
			matchVec: bitvec.NewWords(slots),
		}
	}
	return &Session{core: core, inner: sim.NewSession(core, sink)}
}

// Feed consumes the next chunk of the stream (any size, including empty).
func (s *Session) Feed(chunk []byte) { s.inner.Feed(chunk) }

// Flush ends the stream, running the final zero-padded partial cycle.
func (s *Session) Flush() { s.inner.Flush() }

// Reset returns the session to the start-of-stream state.
func (s *Session) Reset() { s.inner.Reset() }

// Stats returns the functional activity statistics of the stream so far.
func (s *Session) Stats() sim.Stats { return s.inner.Stats() }

// Activity returns the switch-activity statistics of the stream so far,
// the input of the energy model.
func (s *Session) Activity() ActivityStats { return s.core.activity }

// Run executes the machine over a byte input and returns reports (sorted
// like the functional simulator's) plus switch-activity statistics for the
// energy model. It is a batch Feed+Flush wrapper over NewSession.
func (m *Machine) Run(input []byte) ([]sim.Report, ActivityStats) {
	var reports []sim.Report
	s := m.NewSession(func(r sim.Report) { reports = append(reports, r) })
	s.Feed(input)
	s.Flush()
	sim.SortReports(reports)
	return reports, s.Activity()
}

// BitstreamBytes returns the total configuration payload size of the
// machine in bytes (matching subarrays + switch images), the quantity the
// host transfers over memory-mapped I/O at configuration time.
func (m *Machine) BitstreamBytes() int {
	total := 0
	for _, u := range m.Groups {
		for b := range u.Match {
			for _, mat := range u.Match[b] {
				total += mat.Rows() * mat.Cols() / 8
			}
		}
		total += u.Switches.ConfigBytes()
	}
	return total
}
