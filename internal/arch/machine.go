package arch

import (
	"fmt"
	"sort"

	"impala/internal/automata"
	"impala/internal/bitvec"
	"impala/internal/interconnect"
	"impala/internal/place"
	"impala/internal/sim"
)

// Machine is the capsule-level execution model of a configured Impala (or
// CA-mode) device: per-group state-matching subarray images plus
// interconnect switch images, executed exactly the way the hardware
// pipeline operates — read one row per dimension per block, AND across a
// capsule's columns, AND with the enable vector produced by the wired-OR
// switch fabric. It is the architectural twin of the functional simulator
// and must produce identical reports for any input.
//
// Groups are either plain G4s or (for components beyond 1024 states)
// hierarchical G16s with a hyper switch — the paper's higher-level-switch
// extension.
type Machine struct {
	// Bits and Stride define the symbol geometry.
	Bits, Stride int
	// Groups are the configured switch groups.
	Groups []*Group
}

// Group is one switch group's full configuration.
type Group struct {
	// Match[block][dim] is a (domain-size × 256) subarray image: cell
	// (v, c) is 1 iff the state in block slot c accepts sub-symbol v at
	// dimension dim.
	Match [][]*bitvec.Matrix
	// Switches is the crossbar configuration (G4 or G16).
	Switches interconnect.Fabric
	// Per-slot start/occupancy vectors.
	always, even, anchored, occupied bitvec.Words
	// report metadata per slot (report counters/IDs in hardware).
	reports []slotReport
	// states maps slots back to automaton state IDs (debug/report identity).
	states []automata.StateID
}

type slotReport struct {
	report bool
	code   int
	offset int
}

// Build configures a machine from a capsule-legal automaton and a valid
// placement of it.
func Build(n *automata.NFA, p *place.Placement) (*Machine, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("arch: Build input invalid: %w", err)
	}
	if !p.Valid() {
		return nil, fmt.Errorf("arch: placement has %d uncovered transitions", p.TotalUncovered)
	}
	m := &Machine{Bits: n.Bits, Stride: n.Stride}
	domain := automata.DomainSize(n.Bits)

	// Map every state to (group, slot).
	type loc struct {
		group int
		slot  int
	}
	locOf := make(map[automata.StateID]loc, n.NumStates())
	for gi, g := range p.G4s {
		for slot, id := range g.Slots {
			if id >= 0 {
				locOf[id] = loc{group: gi, slot: slot}
			}
		}
	}
	if len(locOf) != n.NumStates() {
		return nil, fmt.Errorf("arch: placement covers %d of %d states", len(locOf), n.NumStates())
	}

	for _, gp := range p.G4s {
		var fabric interconnect.Fabric
		if gp.Hierarchical {
			fabric = interconnect.NewG16()
		} else {
			fabric = interconnect.NewG4()
		}
		slots := fabric.Slots()
		if len(gp.Slots) != slots {
			return nil, fmt.Errorf("arch: placement group has %d slots, fabric %d", len(gp.Slots), slots)
		}
		blocks := slots / interconnect.LocalSwitchSize
		u := &Group{
			Switches: fabric,
			Match:    make([][]*bitvec.Matrix, blocks),
			always:   bitvec.NewWords(slots),
			even:     bitvec.NewWords(slots),
			anchored: bitvec.NewWords(slots),
			occupied: bitvec.NewWords(slots),
			reports:  make([]slotReport, slots),
			states:   make([]automata.StateID, slots),
		}
		for b := 0; b < blocks; b++ {
			u.Match[b] = make([]*bitvec.Matrix, n.Stride)
			for d := 0; d < n.Stride; d++ {
				u.Match[b][d] = bitvec.NewMatrix(domain, interconnect.LocalSwitchSize)
			}
		}
		for i := range u.states {
			u.states[i] = -1
		}
		m.Groups = append(m.Groups, u)
	}

	for i := range n.States {
		s := &n.States[i]
		cover := s.Match.Normalize()
		if len(cover) != 1 {
			return nil, fmt.Errorf("arch: state %d is not capsule-legal (%d rects); run Refine first", i, len(cover))
		}
		rect := cover[0]
		l := locOf[automata.StateID(i)]
		u := m.Groups[l.group]
		block, col := l.slot/interconnect.LocalSwitchSize, l.slot%interconnect.LocalSwitchSize
		for d := 0; d < n.Stride; d++ {
			for _, v := range rect[d].Values() {
				u.Match[block][d].Set(int(v), col)
			}
		}
		u.occupied.Set(l.slot)
		u.states[l.slot] = automata.StateID(i)
		switch s.Start {
		case automata.StartAllInput:
			u.always.Set(l.slot)
		case automata.StartOfData:
			u.anchored.Set(l.slot)
		case automata.StartEven:
			u.even.Set(l.slot)
		}
		if s.Report {
			u.reports[l.slot] = slotReport{report: true, code: s.ReportCode, offset: s.ReportOffset}
		}
		for _, t := range s.Out {
			tl := locOf[t]
			if tl.group != l.group {
				return nil, fmt.Errorf("arch: edge %d->%d crosses switch groups", i, t)
			}
			if err := u.Switches.Connect(l.slot, tl.slot); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Run executes the machine over a byte input and returns reports (sorted
// like the functional simulator's) plus switch-activity statistics for the
// energy model.
func (m *Machine) Run(input []byte) ([]sim.Report, ActivityStats) {
	syms := sim.SubSymbols(m.Bits, input)
	S := m.Stride
	totalBits := len(syms) * m.Bits
	cycles := (len(syms) + S - 1) / S

	var stats ActivityStats
	var reports []sim.Report
	chunk := make([]byte, S)

	type groupState struct {
		active, prev, enable bitvec.Words
		matchVec             bitvec.Words
	}
	gs := make([]groupState, len(m.Groups))
	for i := range gs {
		slots := m.Groups[i].Switches.Slots()
		gs[i] = groupState{
			active:   bitvec.NewWords(slots),
			prev:     bitvec.NewWords(slots),
			enable:   bitvec.NewWords(slots),
			matchVec: bitvec.NewWords(slots),
		}
	}

	for t := 0; t < cycles; t++ {
		for i := 0; i < S; i++ {
			p := t*S + i
			if p < len(syms) {
				chunk[i] = syms[p]
			} else {
				chunk[i] = 0
			}
		}
		for gi, u := range m.Groups {
			st := &gs[gi]
			// --- interconnect phase: propagate previous active states ---
			u.Switches.Propagate(st.prev, st.enable)
			lb, gr, cs := u.Switches.Activity(st.prev)
			stats.LocalSwitchActivations += int64(lb)
			stats.GlobalSwitchActivations += int64(gr)
			stats.CrossBlockSignals += int64(cs)
			// Start kinds.
			for w := range st.enable {
				st.enable[w] |= u.always[w]
				if t == 0 {
					st.enable[w] |= u.anchored[w]
				}
				if t%2 == 0 {
					st.enable[w] |= u.even[w]
				}
			}

			// --- state-match phase: row reads + capsule AND ---
			for w := range st.matchVec {
				st.matchVec[w] = ^uint64(0)
			}
			for b := range u.Match {
				base := b * interconnect.LocalSwitchSize / 64
				for d := 0; d < S; d++ {
					row := u.Match[b][d].Row(int(chunk[d]))
					for w, word := range row {
						st.matchVec[base+w] &= word
					}
				}
			}
			// active = enable ∧ match ∧ occupied.
			for w := range st.active {
				st.active[w] = st.enable[w] & st.matchVec[w] & u.occupied[w]
			}

			// --- reporting ---
			st.active.ForEach(func(slot int) {
				r := u.reports[slot]
				if !r.report {
					return
				}
				bitPos := (t*S + r.offset) * m.Bits
				if bitPos <= totalBits {
					reports = append(reports, sim.Report{BitPos: bitPos, Code: r.code, State: u.states[slot]})
				}
			})

			st.prev, st.active = st.active, st.prev
		}
	}
	stats.Cycles = int64(cycles)
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].BitPos != reports[j].BitPos {
			return reports[i].BitPos < reports[j].BitPos
		}
		if reports[i].Code != reports[j].Code {
			return reports[i].Code < reports[j].Code
		}
		return reports[i].State < reports[j].State
	})
	return reports, stats
}

// BitstreamBytes returns the total configuration payload size of the
// machine in bytes (matching subarrays + switch images), the quantity the
// host transfers over memory-mapped I/O at configuration time.
func (m *Machine) BitstreamBytes() int {
	total := 0
	for _, u := range m.Groups {
		for b := range u.Match {
			for _, mat := range u.Match[b] {
				total += mat.Rows() * mat.Cols() / 8
			}
		}
		total += u.Switches.ConfigBytes()
	}
	return total
}
