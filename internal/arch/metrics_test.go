package arch_test

import (
	"testing"

	"impala/internal/arch"
	"impala/internal/automata"
	"impala/internal/core"
	"impala/internal/obs"
)

// Live machine counters must mirror the per-run ActivityStats exactly: the
// same cycle and switch-activity totals the energy model consumes.
func TestMachineMetricsMirrorActivity(t *testing.T) {
	reg := obs.NewRegistry()
	arch.EnableMetrics(reg)
	defer arch.EnableMetrics(nil)

	n := automata.New(8, 1)
	n.AddLiteral("abc", automata.StartAllInput, 1)
	m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 2})

	s := m.NewSession(nil)
	s.Feed([]byte("xxabcxxabc"))
	s.Flush()
	act := s.Activity()

	snap := reg.Snapshot()
	if got := snap.Counters["arch_sessions_opened_total"]; got != 1 {
		t.Errorf("sessions = %d, want 1", got)
	}
	if got := snap.Counters["arch_cycles_total"]; got != act.Cycles {
		t.Errorf("cycles = %d, want %d", got, act.Cycles)
	}
	if got := snap.Counters["arch_local_switch_activations_total"]; got != act.LocalSwitchActivations {
		t.Errorf("local activations = %d, want %d", got, act.LocalSwitchActivations)
	}
	if got := snap.Counters["arch_global_switch_activations_total"]; got != act.GlobalSwitchActivations {
		t.Errorf("global activations = %d, want %d", got, act.GlobalSwitchActivations)
	}
	if got := snap.Counters["arch_cross_block_signals_total"]; got != act.CrossBlockSignals {
		t.Errorf("cross-block signals = %d, want %d", got, act.CrossBlockSignals)
	}
	if act.Cycles == 0 || act.LocalSwitchActivations == 0 {
		t.Fatalf("degenerate activity %+v — test input too small", act)
	}
}
