package arch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"impala/internal/arch"
	"impala/internal/automata"
	"impala/internal/bitvec"
	"impala/internal/core"
	"impala/internal/place"
	"impala/internal/sim"
)

func compileAndBuild(t *testing.T, n *automata.NFA, cfg core.Config) (*arch.Machine, *automata.NFA) {
	t.Helper()
	res, err := core.Compile(n, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p, err := place.Place(res.NFA, place.Options{Seed: 1})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	m, err := arch.Build(res.NFA, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, res.NFA
}

// The central architectural property: the capsule-level machine executing
// the bitstream produces exactly the reports of the functional simulator on
// the transformed automaton, and of the original automaton.
func TestMachineMatchesSimulator(t *testing.T) {
	n := automata.New(8, 1)
	n.AddLiteral("abc", automata.StartAllInput, 1)
	n.AddLiteral("hi", automata.StartAllInput, 2)
	n.AddChain([]bitvec.ByteSet{bitvec.ByteRange('0', '9'), bitvec.ByteRange('0', '9')}, automata.StartAllInput, 3)

	for _, cfg := range []core.Config{
		{TargetBits: 4, StrideDims: 2},
		{TargetBits: 4, StrideDims: 4},
		{TargetBits: 8, StrideDims: 1},
		{TargetBits: 8, StrideDims: 2},
	} {
		m, transformed := compileAndBuild(t, n, cfg)
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			input := make([]byte, 1+r.Intn(60))
			for i := range input {
				input[i] = "abchi0123456789xyz"[r.Intn(18)]
			}
			mrep, _ := m.Run(input)
			srep, _, err := sim.Run(transformed, input)
			if err != nil {
				t.Fatal(err)
			}
			if !sim.SameReports(mrep, srep) {
				t.Fatalf("cfg %+v input %q:\n machine=%v\n sim=%v",
					cfg, input, sim.ReportKeys(mrep), sim.ReportKeys(srep))
			}
			orep, _, err := sim.Run(n, input)
			if err != nil {
				t.Fatal(err)
			}
			if !sim.SameReports(mrep, orep) {
				t.Fatalf("cfg %+v input %q: machine=%v original=%v",
					cfg, input, sim.ReportKeys(mrep), sim.ReportKeys(orep))
			}
		}
	}
}

func TestMachineActivityStats(t *testing.T) {
	n := automata.New(8, 1)
	n.AddLiteral("aa", automata.StartAllInput, 1)
	m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 2})
	_, stats := m.Run([]byte("aaaaaaaa"))
	if stats.Cycles != 8 {
		t.Fatalf("cycles = %d", stats.Cycles)
	}
	if stats.LocalSwitchActivations == 0 {
		t.Fatal("no local switch activity recorded")
	}
}

func TestMachineRejectsNonCapsuleLegal(t *testing.T) {
	n := automata.New(4, 2)
	ms := automata.MatchSet{
		automata.Rect{bitvec.ByteOf(1), bitvec.ByteOf(2)},
		automata.Rect{bitvec.ByteOf(3), bitvec.ByteOf(4)},
	}
	n.AddState(automata.State{Match: ms, Start: automata.StartAllInput, Report: true, ReportOffset: 2})
	p, err := place.Place(n, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arch.Build(n, p); err == nil {
		t.Fatal("non-capsule-legal automaton accepted")
	}
}

func TestMachineBitstreamBytes(t *testing.T) {
	n := automata.New(8, 1)
	n.AddLiteral("ab", automata.StartAllInput, 1)
	m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 4})
	got := m.BitstreamBytes()
	// One G4: 4 blocks × 4 dims × (16×256)/8 + 4 locals × 256×256/8 + global.
	want := 4*4*16*256/8 + 4*256*256/8 + 256*256/8
	if got != want {
		t.Fatalf("BitstreamBytes = %d, want %d", got, want)
	}
}

func TestMachineSquashedDesign(t *testing.T) {
	// 1-stride 4-bit design (StartEven states) must also run correctly.
	n := automata.New(8, 1)
	n.AddLiteral("ab", automata.StartAllInput, 1)
	m, transformed := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 1})
	for _, in := range []string{"ab", "xab", "abab", "ba"} {
		mrep, _ := m.Run([]byte(in))
		srep, _, err := sim.Run(transformed, []byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if !sim.SameReports(mrep, srep) {
			t.Fatalf("input %q: machine=%v sim=%v", in, sim.ReportKeys(mrep), sim.ReportKeys(srep))
		}
	}
}

// Property test at moderate scale: random automata through the full
// pipeline, machine vs original equivalence.
func TestMachineEndToEndRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		n := automata.New(8, 1)
		npat := 2 + r.Intn(4)
		for p := 0; p < npat; p++ {
			length := 1 + r.Intn(6)
			pat := make([]byte, length)
			for i := range pat {
				pat[i] = byte('a' + r.Intn(6))
			}
			n.AddLiteral(string(pat), automata.StartAllInput, p+1)
		}
		m, _ := compileAndBuild(t, n, core.Config{TargetBits: 4, StrideDims: 4})
		for k := 0; k < 5; k++ {
			input := make([]byte, 1+r.Intn(40))
			for i := range input {
				input[i] = byte('a' + r.Intn(8))
			}
			mrep, _ := m.Run(input)
			orep, _, err := sim.Run(n, input)
			if err != nil {
				t.Fatal(err)
			}
			if !sim.SameReports(mrep, orep) {
				t.Fatalf("trial %d input %q: machine=%v original=%v",
					trial, input, sim.ReportKeys(mrep), sim.ReportKeys(orep))
			}
		}
	}
}

func ExampleDesign_ThroughputGbps() {
	d := arch.Design{Arch: arch.Impala, Bits: 4, Stride: 4}
	fmt.Printf("%.0f Gbps\n", d.ThroughputGbps())
	// Output: 80 Gbps
}

// TestMachineHierarchicalG16 exercises the higher-level-switch extension
// end-to-end: a single >1024-state component is placed on a G16 and the
// capsule machine must agree with the functional simulator across the
// hyper switch.
func TestMachineHierarchicalG16(t *testing.T) {
	n := automata.New(8, 1)
	const L = 1300
	prev := automata.StateID(-1)
	for i := 0; i < L; i++ {
		kind := automata.StartNone
		if i == 0 {
			kind = automata.StartAllInput
		}
		id := n.AddState(automata.State{
			Match:        automata.MatchSet{automata.Rect{bitvec.ByteOf(byte('a' + i%4))}},
			Start:        kind,
			Report:       i == L-1,
			ReportCode:   1,
			ReportOffset: 1,
		})
		if prev >= 0 {
			n.AddEdge(prev, id)
		}
		prev = id
	}
	// A long-distance loop so the hyper switch is actually used.
	n.AddEdge(prev, 0)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid() {
		t.Fatalf("placement uncovered: %d", p.TotalUncovered)
	}
	hier := false
	for _, g := range p.G4s {
		if g.Hierarchical {
			hier = true
		}
	}
	if !hier {
		t.Fatal("expected a hierarchical group")
	}
	m, err := arch.Build(n, p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	// The chain is abcdabcd...; feed exact prefixes and noise.
	for trial := 0; trial < 3; trial++ {
		input := make([]byte, 2000+r.Intn(1000))
		for i := range input {
			input[i] = byte('a' + i%4)
		}
		// Corrupt a few positions.
		for k := 0; k < trial*3; k++ {
			input[r.Intn(len(input))] = 'z'
		}
		mrep, _ := m.Run(input)
		srep, _, err := sim.Run(n, input)
		if err != nil {
			t.Fatal(err)
		}
		if !sim.SameReports(mrep, srep) {
			t.Fatalf("trial %d: machine=%v sim=%v", trial, len(mrep), len(srep))
		}
	}
}

// The capsule-level session must be report- and activity-identical to the
// batch Machine.Run under arbitrary chunk partitions, and fully reusable
// after Reset — the same streaming contract as the functional engines.
func TestMachineSessionStreaming(t *testing.T) {
	n := automata.New(8, 1)
	n.AddLiteral("abc", automata.StartAllInput, 1)
	n.AddLiteral("bca", automata.StartAllInput, 2)
	for _, cfg := range []core.Config{
		{TargetBits: 4, StrideDims: 4},
		{TargetBits: 8, StrideDims: 1},
	} {
		m, _ := compileAndBuild(t, n, cfg)
		r := rand.New(rand.NewSource(11))
		input := make([]byte, 64)
		for i := range input {
			input[i] = "abc"[r.Intn(3)]
		}
		wantR, wantA := m.Run(input)

		var got []sim.Report
		s := m.NewSession(func(r sim.Report) { got = append(got, r) })
		for pass := 0; pass < 2; pass++ { // second pass exercises Reset
			got = nil
			for pos := 0; pos < len(input); {
				sz := 1 + r.Intn(7)
				if sz > len(input)-pos {
					sz = len(input) - pos
				}
				s.Feed(input[pos : pos+sz])
				pos += sz
			}
			s.Feed(nil)
			s.Flush()
			sim.SortReports(got)
			if len(got) != len(wantR) {
				t.Fatalf("cfg %+v pass %d: session %d reports, batch %d", cfg, pass, len(got), len(wantR))
			}
			for i := range got {
				if got[i] != wantR[i] {
					t.Fatalf("cfg %+v pass %d report %d: session %+v, batch %+v", cfg, pass, i, got[i], wantR[i])
				}
			}
			if a := s.Activity(); a != wantA {
				t.Fatalf("cfg %+v pass %d: session activity %+v, batch %+v", cfg, pass, a, wantA)
			}
			s.Reset()
		}
	}
}
