package arch

import (
	"encoding/binary"
	"fmt"
	"io"

	"impala/internal/automata"
	"impala/internal/bitvec"
	"impala/internal/interconnect"
)

// Bitstream serialization: the full device configuration — matching
// subarray images, switch images, start/occupancy vectors and report
// metadata — as a flat byte stream, the payload a host transfers over
// memory-mapped I/O or DMA at configuration time (Section 6). WriteConfig
// and ReadConfig round-trip a Machine exactly, enabling compile-once /
// configure-later flows (impalac -bitstream).

const (
	bitstreamMagic   = 0x494D504C // "IMPL"
	bitstreamVersion = 1

	groupKindG4  = 0
	groupKindG16 = 1
)

// WriteConfig serializes the machine configuration.
func (m *Machine) WriteConfig(w io.Writer) error {
	bw := &binWriter{w: w}
	bw.u32(bitstreamMagic)
	bw.u32(bitstreamVersion)
	bw.u32(uint32(m.Bits))
	bw.u32(uint32(m.Stride))
	bw.u32(uint32(len(m.Groups)))
	for _, g := range m.Groups {
		slots := g.Switches.Slots()
		switch g.Switches.(type) {
		case *interconnect.G4:
			bw.u32(groupKindG4)
		case *interconnect.G16:
			bw.u32(groupKindG16)
		default:
			return fmt.Errorf("arch: unknown fabric type")
		}
		// Matching subarrays.
		for b := range g.Match {
			for _, mat := range g.Match[b] {
				bw.matrix(mat)
			}
		}
		// Switch images.
		switch f := g.Switches.(type) {
		case *interconnect.G4:
			writeG4(bw, f)
		case *interconnect.G16:
			for _, u := range f.G4s {
				writeG4(bw, u)
			}
			bw.matrix(f.Hyper)
		}
		// Start / occupancy vectors.
		bw.words(g.always)
		bw.words(g.even)
		bw.words(g.anchored)
		bw.words(g.occupied)
		// Report metadata and state identities per slot.
		for s := 0; s < slots; s++ {
			r := g.reports[s]
			flag := uint32(0)
			if r.report {
				flag = 1
			}
			bw.u32(flag)
			bw.u32(uint32(int32(r.code)))
			bw.u32(uint32(r.offset))
			bw.u32(uint32(int32(g.states[s])))
		}
	}
	return bw.err
}

func writeG4(bw *binWriter, g *interconnect.G4) {
	for _, l := range g.Locals {
		bw.matrix(l)
	}
	bw.matrix(g.Global)
}

// ReadConfig deserializes a machine configuration.
func ReadConfig(r io.Reader) (*Machine, error) {
	br := &binReader{r: r}
	if br.u32() != bitstreamMagic {
		return nil, fmt.Errorf("arch: not an Impala bitstream")
	}
	if v := br.u32(); v != bitstreamVersion {
		return nil, fmt.Errorf("arch: unsupported bitstream version %d", v)
	}
	m := &Machine{Bits: int(br.u32()), Stride: int(br.u32())}
	if br.err != nil {
		return nil, br.err
	}
	if m.Bits != 4 && m.Bits != 8 {
		return nil, fmt.Errorf("arch: bad symbol width %d", m.Bits)
	}
	if m.Stride < 1 || m.Stride > 8 {
		return nil, fmt.Errorf("arch: bad stride %d", m.Stride)
	}
	domain := automata.DomainSize(m.Bits)
	groups := int(br.u32())
	if groups < 0 || groups > 1<<20 {
		return nil, fmt.Errorf("arch: implausible group count %d", groups)
	}
	for gi := 0; gi < groups; gi++ {
		kind := br.u32()
		var fabric interconnect.Fabric
		switch kind {
		case groupKindG4:
			fabric = interconnect.NewG4()
		case groupKindG16:
			fabric = interconnect.NewG16()
		default:
			return nil, fmt.Errorf("arch: unknown group kind %d", kind)
		}
		slots := fabric.Slots()
		blocks := slots / interconnect.LocalSwitchSize
		g := &Group{
			Switches: fabric,
			Match:    make([][]*bitvec.Matrix, blocks),
			always:   bitvec.NewWords(slots),
			even:     bitvec.NewWords(slots),
			anchored: bitvec.NewWords(slots),
			occupied: bitvec.NewWords(slots),
			reports:  make([]slotReport, slots),
			states:   make([]automata.StateID, slots),
		}
		for b := 0; b < blocks; b++ {
			g.Match[b] = make([]*bitvec.Matrix, m.Stride)
			for d := 0; d < m.Stride; d++ {
				g.Match[b][d] = bitvec.NewMatrix(domain, interconnect.LocalSwitchSize)
				br.matrix(g.Match[b][d])
			}
		}
		switch f := fabric.(type) {
		case *interconnect.G4:
			readG4(br, f)
		case *interconnect.G16:
			for _, u := range f.G4s {
				readG4(br, u)
			}
			br.matrix(f.Hyper)
		}
		br.words(g.always)
		br.words(g.even)
		br.words(g.anchored)
		br.words(g.occupied)
		for s := 0; s < slots; s++ {
			flag := br.u32()
			code := int(int32(br.u32()))
			offset := int(br.u32())
			state := automata.StateID(int32(br.u32()))
			g.reports[s] = slotReport{report: flag != 0, code: code, offset: offset}
			g.states[s] = state
		}
		if br.err != nil {
			return nil, br.err
		}
		m.Groups = append(m.Groups, g)
	}
	return m, br.err
}

func readG4(br *binReader, g *interconnect.G4) {
	for _, l := range g.Locals {
		br.matrix(l)
	}
	br.matrix(g.Global)
}

// ---- little-endian framing helpers ----

type binWriter struct {
	w   io.Writer
	err error
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, b.err = b.w.Write(buf[:])
}

func (b *binWriter) words(w bitvec.Words) {
	for _, x := range w {
		b.u64(x)
	}
}

func (b *binWriter) matrix(m *bitvec.Matrix) {
	for r := 0; r < m.Rows(); r++ {
		for _, x := range m.Row(r) {
			b.u64(x)
		}
	}
}

type binReader struct {
	r   io.Reader
	err error
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	var buf [4]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	var buf [8]byte
	_, b.err = io.ReadFull(b.r, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *binReader) words(w bitvec.Words) {
	for i := range w {
		w[i] = b.u64()
	}
}

func (b *binReader) matrix(m *bitvec.Matrix) {
	for r := 0; r < m.Rows(); r++ {
		row := m.MutableRow(r)
		for i := range row {
			row[i] = b.u64()
		}
	}
}
