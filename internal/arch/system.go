package arch

import "impala/internal/sim"

// System-integration model (Section 6): Impala is a memory-mapped
// peripheral with two asynchronous FIFOs — an input buffer (IB) the host
// ISR refills and an output buffer (OB) it drains. The paper sizes the IB
// so a 1 MHz interrupt keeps a 5 GHz engine fed (2.5 KB at 4 bits/cycle)
// and the OB at 512 four-byte entries based on the observation that 10 of
// 12 ANMLZoo benchmarks report fewer than 0.5 reports/cycle.

// SystemConfig describes the host-device coupling.
type SystemConfig struct {
	Design Design
	// InterruptHz is the host service rate (paper: 1 MHz).
	InterruptHz float64
	// OBEntries is the output FIFO depth (paper: 512).
	OBEntries int
	// OBEntryBytes is the report record size (paper: 4 bytes of metadata).
	OBEntryBytes int
}

// DefaultSystem returns the paper's Section 6 operating point for a design.
func DefaultSystem(d Design) SystemConfig {
	return SystemConfig{Design: d, InterruptHz: 1e6, OBEntries: 512, OBEntryBytes: 4}
}

// SystemReport is the buffer-sizing analysis.
type SystemReport struct {
	// CyclesPerInterrupt is how many engine cycles elapse between ISR runs.
	CyclesPerInterrupt float64
	// IBBytes is the input-buffer size needed to keep the engine fed for
	// one interrupt period.
	IBBytes float64
	// OBDrainPerInterrupt is how many reports the OB can absorb per period.
	OBDrainPerInterrupt int
	// MaxReportsPerCycle is the highest sustained reporting rate the OB
	// supports without overflow at this interrupt rate.
	MaxReportsPerCycle float64
	// OBOverflow indicates the observed workload rate exceeds the budget.
	OBOverflow bool
	// ObservedReportsPerCycle echoes the workload measurement (if given).
	ObservedReportsPerCycle float64
}

// Analyze sizes the buffers. observedReportsPerCycle may be 0 when no
// workload measurement is available.
func (c SystemConfig) Analyze(observedReportsPerCycle float64) SystemReport {
	freqHz := c.Design.FreqGHz() * 1e9
	cycles := freqHz / c.InterruptHz
	bytesPerCycle := float64(c.Design.BitsPerCycle()) / 8
	r := SystemReport{
		CyclesPerInterrupt:      cycles,
		IBBytes:                 cycles * bytesPerCycle,
		OBDrainPerInterrupt:     c.OBEntries,
		MaxReportsPerCycle:      float64(c.OBEntries) / cycles,
		ObservedReportsPerCycle: observedReportsPerCycle,
	}
	r.OBOverflow = observedReportsPerCycle > r.MaxReportsPerCycle
	return r
}

// OBBytes returns the output buffer's size in bytes.
func (c SystemConfig) OBBytes() int { return c.OBEntries * c.OBEntryBytes }

// OBSimResult is the outcome of a cycle-accurate output-FIFO simulation.
type OBSimResult struct {
	Delivered int
	Dropped   int
	// PeakOccupancy is the largest FIFO fill level observed.
	PeakOccupancy int
}

// SimulateOB replays a report stream against the output FIFO: reports
// enqueue at their generating cycle, and the interrupt service routine
// drains the whole FIFO once per interrupt period. Reports arriving at a
// full FIFO are dropped — the §6 bottleneck the 512-entry sizing is meant
// to avoid for sub-0.5-reports/cycle workloads.
func (c SystemConfig) SimulateOB(reports []sim.Report, totalCycles int64) OBSimResult {
	bitsPerCycle := c.Design.BitsPerCycle()
	freqHz := c.Design.FreqGHz() * 1e9
	cyclesPerInterrupt := int64(freqHz / c.InterruptHz)
	if cyclesPerInterrupt < 1 {
		cyclesPerInterrupt = 1
	}
	var res OBSimResult
	occ := 0
	nextDrain := cyclesPerInterrupt
	for _, r := range reports {
		cycle := int64(r.BitPos) / int64(bitsPerCycle)
		for cycle >= nextDrain {
			res.Delivered += occ
			occ = 0
			nextDrain += cyclesPerInterrupt
		}
		if occ >= c.OBEntries {
			res.Dropped++
			continue
		}
		occ++
		if occ > res.PeakOccupancy {
			res.PeakOccupancy = occ
		}
	}
	res.Delivered += occ
	return res
}
