package arch

import (
	"math"

	"impala/internal/interconnect"
)

// Area model (Section 8.3, Figure 14).
//
// State matching:
//   - Impala: each state needs Stride short columns (16 cells), one per
//     4-bit dimension, located in different subarrays. A 16×256 subarray
//     holds 256 columns, so a block of 256 states needs Stride subarrays.
//   - CA: each state is one 256-cell column; a 256×256 subarray holds 256
//     states; CA 16-bit striding doubles columns per state.
//   - AP: modelled from the paper's published ratios (its 50nm DRAM layout
//     is not public): state-matching 34.5× and total 3.9× larger than
//     Impala 16-bit at 32K STEs, scaled to 14nm.
//
// Interconnect: both Impala and CA use the hierarchical memory-mapped
// fabric — one 256×256 8T local switch per 256 states plus one 256×256
// global switch per G4 (4 locals).

// APAreaScale are the back-derived AP constants (µm² per state), chosen so
// the 32K-STE comparison reproduces the paper's published 34.5× state-match
// and 3.9× total ratios versus Impala 16-bit.
var apAreaScale = struct {
	matchPerStateUM2 float64
	routePerStateUM2 float64
}{}

func init() {
	// Impala 16-bit at 32K states.
	imp := AreaBreakdown(Design{Arch: Impala, Bits: 4, Stride: 4}, 32*1024)
	apAreaScale.matchPerStateUM2 = 34.5 * imp.StateMatchMM2 * 1e6 / (32 * 1024)
	apTotal := 3.9 * imp.TotalMM2()
	apAreaScale.routePerStateUM2 = (apTotal*1e6 - 34.5*imp.StateMatchMM2*1e6) / (32 * 1024)
}

// Breakdown is an area decomposition in mm².
type Breakdown struct {
	StateMatchMM2   float64
	InterconnectMM2 float64
}

// TotalMM2 returns the summed area.
func (b Breakdown) TotalMM2() float64 { return b.StateMatchMM2 + b.InterconnectMM2 }

// AreaBreakdown returns the area needed to host `states` STEs on the given
// design point.
func AreaBreakdown(d Design, states int) Breakdown {
	if states <= 0 {
		return Breakdown{}
	}
	blocks := int(math.Ceil(float64(states) / interconnect.LocalSwitchSize))
	g4s := int(math.Ceil(float64(blocks) / interconnect.LocalsPerG4))
	icUM2 := float64(blocks)*SwitchSubarray.AreaUM2 + float64(g4s)*SwitchSubarray.AreaUM2

	switch d.Arch {
	case Impala:
		// Stride subarrays per 256-state block.
		smUM2 := float64(blocks) * float64(d.Stride) * ImpalaMatchSubarray.AreaUM2
		return Breakdown{StateMatchMM2: smUM2 / 1e6, InterconnectMM2: icUM2 / 1e6}
	case CacheAutomaton:
		smUM2 := float64(blocks) * float64(d.Stride) * CAMatchSubarray.AreaUM2
		return Breakdown{StateMatchMM2: smUM2 / 1e6, InterconnectMM2: icUM2 / 1e6}
	case AutomataProcessor:
		return Breakdown{
			StateMatchMM2:   apAreaScale.matchPerStateUM2 * float64(states) / 1e6,
			InterconnectMM2: apAreaScale.routePerStateUM2 * float64(states) / 1e6,
		}
	default:
		panic("arch: unknown architecture")
	}
}

// HardwareUnit describes one replication unit of a design: its state
// capacity and area. Benchmarks larger than one unit replicate it.
type HardwareUnit struct {
	Design   Design
	Capacity int
	Area     Breakdown
}

// StandardUnit returns the paper's comparison unit: 32K STEs for Impala and
// CA (128 local blocks = 32 G4s), and one AP chip's 48K STEs for the AP.
func StandardUnit(d Design) HardwareUnit {
	capacity := 32 * 1024
	if d.Arch == AutomataProcessor {
		capacity = 48 * 1024
	}
	return HardwareUnit{Design: d, Capacity: capacity, Area: AreaBreakdown(d, capacity)}
}

// UnitsFor returns how many hardware units a benchmark with the given state
// count needs.
func (h HardwareUnit) UnitsFor(states int) int {
	if states <= 0 {
		return 0
	}
	return (states + h.Capacity - 1) / h.Capacity
}

// ThroughputPerArea returns the Figure 11 metric, Gbps/mm², for a benchmark
// that requires `states` STEs after the design's transformation.
func ThroughputPerArea(d Design, states int) float64 {
	h := StandardUnit(d)
	units := h.UnitsFor(states)
	if units == 0 {
		return 0
	}
	return d.ThroughputGbps() / (float64(units) * h.Area.TotalMM2())
}
