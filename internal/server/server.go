package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"
	"time"

	"impala"
	"impala/internal/obs"
	"impala/internal/par"
)

// Per-request buffers are recycled across requests, mirroring the engine
// pools in sim/compiled.go: bodyPool holds /match request bodies, rowsPool
// the response match rows, and chunkPool the /stream read buffers. Under
// steady-state traffic the handlers then allocate only what the engine and
// the JSON encoder need (pinned by TestMatchHandlerAllocs).
var (
	bodyPool  = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	rowsPool  = sync.Pool{New: func() any { return &matchRows{rows: make([]matchJSON, 0, 64)} }}
	chunkPool = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}
)

// matchRows boxes the pooled row slice so Put never allocates.
type matchRows struct{ rows []matchJSON }

// Config tunes the daemon.
type Config struct {
	// Workers is the one-shot match worker-pool size (<=0: GOMAXPROCS).
	Workers int
	// QueueLen bounds match tasks admitted beyond the busy workers
	// (default 64). A full queue rejects with 503 — backpressure instead
	// of unbounded buffering.
	QueueLen int
	// MaxStreams bounds concurrent streaming connections (default 256);
	// excess connections are rejected with 503.
	MaxStreams int
	// RequestTimeout bounds one /match request from admission to
	// completion (default 10s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a /match payload (default 16 MiB). Streams are
	// unbounded in total but read chunk-wise.
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the server instruments (see
	// bindMetrics) — typically the same registry the ops listener serves.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// Server hosts the tenant registry and the match/stream endpoints.
type Server struct {
	cfg     Config
	tenants *Registry
	pool    *par.Pool
	m       *metrics
	mux     *http.ServeMux

	streamSem chan struct{}
	draining  chan struct{}
	drainOnce sync.Once
	drainMu   sync.Mutex     // serializes stream admission against Drain
	wg        sync.WaitGroup // in-flight streaming connections
}

// New builds a server around an empty tenant registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		tenants:   NewRegistry(),
		pool:      par.NewPool(cfg.Workers, cfg.QueueLen),
		streamSem: make(chan struct{}, cfg.MaxStreams),
		draining:  make(chan struct{}),
	}
	s.m = bindMetrics(cfg.Metrics, s.pool, s.tenants)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/match", s.handleMatch)
	mux.HandleFunc("POST /v1/{tenant}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/{tenant}/reload", s.handleReload)
	mux.HandleFunc("DELETE /v1/{tenant}", s.handleEvict)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	return s
}

// Tenants exposes the registry for loading/eviction by the embedding
// binary (impala-serve's -load flags, tests).
func (s *Server) Tenants() *Registry { return s.tenants }

// Handler returns the HTTP handler (mount on any listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting work and waits for in-flight requests: match tasks
// finish on the pool, streaming connections run to completion. Call after
// (or concurrently with) http.Server.Shutdown for a clean SIGTERM exit.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.drainMu.Lock()
		close(s.draining)
		s.drainMu.Unlock()
	})
	s.wg.Wait()
	s.pool.Close()
}

// enterStream registers a streaming connection with the drain barrier. It
// is serialized against Drain so a connection either registers before the
// barrier closes (and Drain waits for it) or observes draining and is
// rejected — wg.Add can never race wg.Wait past zero.
func (s *Server) enterStream() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.isDraining() {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// httpError writes a JSON error body and counts it.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.m.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := s.tenants.Get(name)
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown tenant %q", name)
		return nil, false
	}
	return t, true
}

// matchResponse is the one-shot result document.
type matchResponse struct {
	Tenant     string      `json:"tenant"`
	Generation int         `json:"generation"`
	Bytes      int         `json:"bytes"`
	Matches    []matchJSON `json:"matches"`
	ElapsedUS  int64       `json:"elapsed_us"`
}

type matchJSON struct {
	End     int `json:"end"`
	Pattern int `json:"pattern"`
	// Score carries the accumulated max-plus score on scored tenants
	// (machines whose artifact sealed a SCOR weight table); it is absent on
	// binary tenants, so their response bytes are unchanged.
	Score *float64 `json:"score,omitempty"`
}

// sortRows puts match rows in the serving-boundary canonical order:
// (end, pattern), ascending. Both the single-process /match handler and
// the cluster frontend's merge emit this order, so a client cannot tell a
// frontend fanning out to workers from one process hosting every shard —
// the byte-identity the clustersweep gate pins.
func sortRows(rows []matchJSON) {
	slices.SortFunc(rows, func(a, b matchJSON) int {
		if a.End != b.End {
			return a.End - b.End
		}
		return a.Pattern - b.Pattern
	})
}

// handleMatch is the one-shot batched endpoint: the request body is the
// input stream, the response lists every distinct match. Work runs on the
// bounded pool — a full queue is a 503, an expired per-request timeout a
// 504 — so a traffic spike degrades by rejecting, not by melting.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.m.rejected.Inc()
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	bb := bodyPool.Get().(*bytes.Buffer)
	bb.Reset()
	defer bodyPool.Put(bb)
	if _, err := bb.ReadFrom(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1)); err != nil {
		s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	body := bb.Bytes()
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	s.m.matchRequests.Inc()
	s.m.bytesIn.Add(int64(len(body)))
	s.m.matchBytes.Observe(int64(len(body)))

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	t0 := time.Now()
	// A tenant whose artifact sealed a weight table serves threshold-filtered
	// scored rows; binary tenants keep the exact pre-scoring response bytes.
	scoredTenant := t.Machine.ScoreInfo() != nil
	var matches []impala.Match
	var scored []impala.ScoredMatch
	err := s.pool.Do(ctx, func() {
		if scoredTenant {
			scored, _ = t.Machine.MatchScored(body)
		} else {
			matches = t.Machine.Match(body)
		}
	})
	switch {
	case errors.Is(err, par.ErrQueueFull), errors.Is(err, par.ErrPoolClosed):
		s.m.rejected.Inc()
		s.httpError(w, http.StatusServiceUnavailable, "match queue full")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.httpError(w, http.StatusGatewayTimeout, "timed out after %s in queue", s.cfg.RequestTimeout)
		return
	case err != nil:
		s.httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	elapsed := time.Since(t0)
	s.m.matchLatency.Observe(elapsed.Nanoseconds())
	s.m.reports.Add(int64(len(matches) + len(scored)))

	rp := rowsPool.Get().(*matchRows)
	rp.rows = rp.rows[:0]
	for _, mt := range matches {
		rp.rows = append(rp.rows, matchJSON{End: mt.End, Pattern: mt.Pattern})
	}
	for _, sm := range scored {
		sc := sm.Score
		rp.rows = append(rp.rows, matchJSON{End: sm.End, Pattern: sm.Pattern, Score: &sc})
	}
	sortRows(rp.rows)
	resp := matchResponse{
		Tenant:     t.Name,
		Generation: t.Generation,
		Bytes:      len(body),
		Matches:    rp.rows,
		ElapsedUS:  elapsed.Microseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
	rowsPool.Put(rp)
}

// streamDone is the final NDJSON line of a /stream response; match lines
// reuse matchJSON. Clients tell them apart by the "done" key.
type streamDone struct {
	Done    bool  `json:"done"`
	Bytes   int64 `json:"bytes"`
	Matches int64 `json:"matches"`
}

// handleStream is the incremental endpoint: the chunked request body is
// fed into a per-connection stream over the tenant's machine, and matches
// are written back as NDJSON lines as they complete — a long-lived
// per-flow session, not a buffered batch. Each connection holds one
// MaxStreams slot for its lifetime; the match worker pool is not involved,
// so short one-shot requests are never starved by long flows.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.m.rejected.Inc()
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	select {
	case s.streamSem <- struct{}{}:
	default:
		s.m.rejected.Inc()
		s.httpError(w, http.StatusServiceUnavailable, "stream limit (%d) reached", s.cfg.MaxStreams)
		return
	}
	if !s.enterStream() {
		<-s.streamSem
		s.m.rejected.Inc()
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer func() {
		<-s.streamSem
		s.wg.Done()
	}()
	s.m.streamRequests.Inc()
	s.m.activeStreams.Inc()
	defer s.m.activeStreams.Dec()

	// Matches are written back while the request body is still being read:
	// without full-duplex mode the HTTP/1 server closes the request body at
	// the first response write, killing the stream mid-flow.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tenant-Generation", fmt.Sprint(t.Generation))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	var total, nmatches int64
	var encErr error
	// Scored tenants stream scored rows; the window-deferred emission means
	// a row appears once its score can no longer change (at most a few
	// cycles after the match), with the remainder drained at Flush.
	var stream interface {
		Feed([]byte)
		Flush()
	}
	if t.Machine.ScoreInfo() != nil {
		stream, _ = t.Machine.NewScoredStream(func(sm impala.ScoredMatch) {
			nmatches++
			if encErr == nil {
				sc := sm.Score
				encErr = enc.Encode(matchJSON{End: sm.End, Pattern: sm.Pattern, Score: &sc})
			}
		})
	} else {
		stream = t.Machine.NewStream(func(mt impala.Match) {
			nmatches++
			if encErr == nil {
				encErr = enc.Encode(matchJSON{End: mt.End, Pattern: mt.Pattern})
			}
		})
	}
	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	for {
		n, err := r.Body.Read(buf)
		if n > 0 {
			total += int64(n)
			s.m.bytesIn.Add(int64(n))
			s.m.streamChunk.Observe(int64(n))
			stream.Feed(buf[:n])
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Client went away mid-stream; nothing sensible to write.
				return
			}
			break
		}
	}
	stream.Flush()
	s.m.reports.Add(nmatches)
	if encErr == nil {
		_ = enc.Encode(streamDone{Done: true, Bytes: total, Matches: nmatches})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// tenantJSON is one row of the GET /v1/tenants listing.
type tenantJSON struct {
	Name       string `json:"name"`
	Generation int    `json:"generation"`
	Path       string `json:"path,omitempty"`
	Domain     string `json:"domain,omitempty"`
	States     int    `json:"states"`
	Stride     int    `json:"stride"`
	Bits       int    `json:"bits"`
	Groups     int    `json:"groups,omitempty"`
	LoadedAt   string `json:"loaded_at"`
	// ScoreThreshold is present only on scored tenants (SCOR artifacts).
	ScoreThreshold *float64 `json:"score_threshold,omitempty"`
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	out := []tenantJSON{}
	for _, t := range s.tenants.Tenants() {
		md := t.Machine.Model()
		bits, stride := t.Machine.Geometry()
		row := tenantJSON{
			Name:       t.Name,
			Generation: t.Generation,
			Path:       t.Path,
			Domain:     t.Domain,
			States:     md.States,
			Stride:     stride,
			Bits:       bits,
			Groups:     md.G4s,
			LoadedAt:   t.LoadedAt.UTC().Format(time.RFC3339),
		}
		if si := t.Machine.ScoreInfo(); si != nil {
			th := si.Threshold
			row.ScoreThreshold = &th
		}
		out = append(out, row)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleReload hot-swaps the tenant from its artifact file. The swap is
// atomic: readers either see the old generation or the new one, and a
// load failure leaves the old generation serving.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	t, err := s.tenants.Reload(name)
	if err != nil {
		s.httpError(w, http.StatusConflict, "%v", err)
		return
	}
	s.m.reloads.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"tenant": t.Name, "generation": t.Generation})
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if !s.tenants.Evict(name) {
		s.httpError(w, http.StatusNotFound, "unknown tenant %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"status": status, "tenants": s.tenants.Len()})
}
