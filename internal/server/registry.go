// Package server is the match-online half of the deployment model: a
// multi-tenant HTTP daemon that hosts compiled-automaton artifacts and
// serves one-shot and streaming matching over them. Each tenant is one
// loaded artifact; the compile pipeline never runs in this process — the
// paper's compile-offline (Espresso/V-TeSS/placement) vs match-online
// (placed automaton over many input streams) split, rendered as a service.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"impala"
	"impala/internal/artifact"
)

// Tenant is one served artifact: an immutable (machine, metadata) pair.
// Requests resolve the tenant once at entry and keep using that snapshot,
// so a concurrent hot-reload never changes an in-flight request's engine —
// the old machine stays alive until its last request finishes.
type Tenant struct {
	// Name is the registry key (the {tenant} path element).
	Name string
	// Machine is the loaded execution engine.
	Machine *impala.Machine
	// Path is the artifact file this tenant was loaded from ("" when the
	// machine was installed directly).
	Path string
	// Domain, when non-empty, is the topology domain this tenant was
	// restricted to at load time (-role worker -domain): the machine hosts
	// only the shards the artifact's TOPO placement assigns there, and
	// reloads keep the restriction.
	Domain string
	// Info is the artifact header (nil when installed directly).
	Info *artifact.Info
	// Generation counts installs of this tenant name (1 = first load);
	// a reload bumps it, which tests and clients use to observe hot-swaps.
	Generation int
	// LoadedAt is the install time.
	LoadedAt time.Time
}

// Registry is the tenant table. Readers (the request path) take an atomic
// snapshot of the whole map — no lock, no contention with reloads; writers
// (load, reload, evict) serialize on a mutex and publish a fresh copy:
// copy-on-write hot-swap.
type Registry struct {
	mu sync.Mutex // serializes writers
	v  atomic.Pointer[map[string]*Tenant]
}

// NewRegistry returns an empty tenant registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]*Tenant{}
	r.v.Store(&empty)
	return r
}

func (r *Registry) snapshot() map[string]*Tenant { return *r.v.Load() }

// Get resolves a tenant by name. The returned tenant is an immutable
// snapshot: safe to use for the whole request even across reloads.
func (r *Registry) Get(name string) (*Tenant, bool) {
	t, ok := r.snapshot()[name]
	return t, ok
}

// Len returns the number of tenants.
func (r *Registry) Len() int { return len(r.snapshot()) }

// Names returns the tenant names, sorted.
func (r *Registry) Names() []string {
	m := r.snapshot()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Tenants returns all tenants sorted by name.
func (r *Registry) Tenants() []*Tenant {
	m := r.snapshot()
	out := make([]*Tenant, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// publish installs tenant t (replacing any previous generation) under a
// held writer lock.
func (r *Registry) publish(t *Tenant) {
	old := r.snapshot()
	next := make(map[string]*Tenant, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if prev, ok := old[t.Name]; ok {
		t.Generation = prev.Generation + 1
	} else {
		t.Generation = 1
	}
	next[t.Name] = t
	r.v.Store(&next)
}

// Install publishes a machine directly (no artifact file) under name —
// used by tests and embedders that compiled in-process.
func (r *Registry) Install(name string, m *impala.Machine) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Tenant{Name: name, Machine: m, LoadedAt: time.Now()}
	r.publish(t)
	return t
}

// LoadFile loads the artifact at path, builds its machine, and atomically
// publishes it under name: a hot-swap when the tenant already exists.
// In-flight requests keep the tenant snapshot they resolved at entry.
func (r *Registry) LoadFile(name, path string) (*Tenant, error) {
	return r.LoadFileDomain(name, path, "")
}

// LoadFileDomain is LoadFile restricted to one topology domain: the
// machine hosts only the shards the artifact's TOPO placement assigns to
// the named domain (the worker side of cluster dispatch). An empty domain
// loads the full machine.
func (r *Registry) LoadFileDomain(name, path, domain string) (*Tenant, error) {
	var m *impala.Machine
	var err error
	if domain == "" {
		m, err = impala.LoadMachineFile(path)
	} else {
		m, err = impala.LoadMachineFileDomain(path, domain)
	}
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", name, err)
	}
	info, err := artifact.StatFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Tenant{Name: name, Machine: m, Path: path, Domain: domain, Info: info, LoadedAt: time.Now()}
	r.publish(t)
	return t, nil
}

// Reload re-reads the tenant's artifact file and hot-swaps it. It fails
// (leaving the current generation serving) when the tenant is unknown, was
// installed without a path, or the file no longer loads — a bad deploy
// never takes down a serving tenant.
func (r *Registry) Reload(name string) (*Tenant, error) {
	t, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown tenant %q", name)
	}
	if t.Path == "" {
		return nil, fmt.Errorf("server: tenant %q was installed without an artifact path", name)
	}
	return r.LoadFileDomain(name, t.Path, t.Domain)
}

// Evict removes a tenant. In-flight requests on the old snapshot finish
// normally; new requests see 404.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	if _, ok := old[name]; !ok {
		return false
	}
	next := make(map[string]*Tenant, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	r.v.Store(&next)
	return true
}
