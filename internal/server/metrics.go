package server

import (
	"impala/internal/obs"
	"impala/internal/par"
)

// metrics is the daemon's instrument set. All instruments are nil-safe
// (obs semantics), so a server constructed without a registry pays only
// nil checks on the request path.
type metrics struct {
	matchRequests  *obs.Counter   // serve_match_requests_total
	streamRequests *obs.Counter   // serve_stream_requests_total
	errors         *obs.Counter   // serve_errors_total (4xx/5xx responses)
	rejected       *obs.Counter   // serve_rejected_total (backpressure 429/503)
	bytesIn        *obs.Counter   // serve_bytes_in_total
	reports        *obs.Counter   // serve_reports_total
	reloads        *obs.Counter   // serve_reloads_total
	activeStreams  *obs.Gauge     // serve_active_streams
	matchLatency   *obs.Histogram // serve_match_latency_ns
	matchBytes     *obs.Histogram // serve_match_request_bytes
	streamChunk    *obs.Histogram // serve_stream_chunk_bytes
}

// bindMetrics registers the server instruments in reg and wires the live
// queue-depth and tenant-count gauges to their owners:
//
//	serve_match_requests_total   one-shot /match requests admitted
//	serve_stream_requests_total  /stream connections opened
//	serve_errors_total           error responses (any 4xx/5xx)
//	serve_rejected_total         backpressure rejections (pool/stream caps)
//	serve_bytes_in_total         input payload bytes matched
//	serve_reports_total          matches returned to clients
//	serve_reloads_total          successful tenant hot-swaps
//	serve_active_streams         gauge: streaming connections in flight
//	serve_queue_depth            gauge: match tasks admitted, not started
//	serve_workers_busy           gauge: match tasks executing
//	serve_tenants                gauge: loaded tenants
//	serve_match_latency_ns       histogram: admission→response per /match
//	serve_match_request_bytes    histogram: /match payload sizes
//	serve_stream_chunk_bytes     histogram: /stream body read sizes
//
// A nil registry yields all-nil instruments (every publication is a no-op).
func bindMetrics(reg *obs.Registry, pool *par.Pool, tenants *Registry) *metrics {
	m := &metrics{
		matchRequests:  reg.Counter("serve_match_requests_total"),
		streamRequests: reg.Counter("serve_stream_requests_total"),
		errors:         reg.Counter("serve_errors_total"),
		rejected:       reg.Counter("serve_rejected_total"),
		bytesIn:        reg.Counter("serve_bytes_in_total"),
		reports:        reg.Counter("serve_reports_total"),
		reloads:        reg.Counter("serve_reloads_total"),
		activeStreams:  reg.Gauge("serve_active_streams"),
		matchLatency:   reg.Histogram("serve_match_latency_ns", obs.LatencyBuckets()),
		matchBytes:     reg.Histogram("serve_match_request_bytes", obs.ByteBuckets()),
		streamChunk:    reg.Histogram("serve_stream_chunk_bytes", obs.ByteBuckets()),
	}
	reg.GaugeFunc("serve_queue_depth", pool.Queued)
	reg.GaugeFunc("serve_workers_busy", pool.Running)
	reg.GaugeFunc("serve_tenants", func() int64 { return int64(tenants.Len()) })
	return m
}
