package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"impala/internal/obs"
)

// WorkerSpec names one worker endpoint of a cluster frontend.
type WorkerSpec struct {
	// Name is the display/reporting handle (defaults to the URL host).
	Name string
	// URL is the worker's base URL, e.g. "http://10.0.0.1:8600".
	URL string
}

// ParseWorkers parses the -workers flag: comma-separated worker endpoints,
// each "name=url" or a bare URL (the host:port becomes the name).
func ParseWorkers(s string) ([]WorkerSpec, error) {
	var out []WorkerSpec
	seen := map[string]bool{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		spec := WorkerSpec{}
		if name, rest, ok := strings.Cut(field, "="); ok {
			spec.Name, spec.URL = strings.TrimSpace(name), strings.TrimSpace(rest)
		} else {
			spec.URL = field
		}
		u, err := url.Parse(spec.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: bad worker URL %q (want scheme://host:port)", spec.URL)
		}
		spec.URL = strings.TrimRight(spec.URL, "/")
		if spec.Name == "" {
			spec.Name = u.Host
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: duplicate worker name %q", spec.Name)
		}
		seen[spec.Name] = true
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("server: no workers in %q", s)
	}
	return out, nil
}

// ClusterConfig tunes a frontend.
type ClusterConfig struct {
	// Workers is the worker endpoint set; every worker hosts a disjoint
	// shard subset of each tenant, so all of them answer every request.
	Workers []WorkerSpec
	// WorkerTimeout bounds one worker's /match leg (default 10s); an
	// expired leg degrades the request to a partial-result error.
	WorkerTimeout time.Duration
	// HealthInterval paces the background worker health checks
	// (default 2s; < 0 disables the loop — tests drive CheckWorkers).
	HealthInterval time.Duration
	// MaxBodyBytes bounds a /match payload (default 16 MiB).
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the cluster instruments.
	Metrics *obs.Registry
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.WorkerTimeout == 0 {
		c.WorkerTimeout = 10 * time.Second
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// workerState is the registry entry for one worker: the spec plus the
// health checker's latest verdict.
type workerState struct {
	spec      WorkerSpec
	healthy   atomic.Bool
	lastErr   atomic.Pointer[string]
	checkedAt atomic.Int64 // unix nanos, 0 = never
}

// Frontend fans /v1/{tenant}/match and /v1/{tenant}/stream out to a set of
// worker processes, each hosting a disjoint shard subset of the same sealed
// artifact, and merges the report streams. Merged one-shot responses use
// the same canonical (end, pattern) row order as a single-process server,
// so clients cannot tell the deployment shapes apart; a worker failure or
// timeout degrades to an explicit partial-result error (HTTP 502 with the
// failed workers named) rather than silently missing that worker's shards.
type Frontend struct {
	cfg     ClusterConfig
	workers []*workerState
	client  *http.Client
	mux     *http.ServeMux
	m       *clusterMetrics

	stop      chan struct{}
	loopDone  chan struct{}
	draining  chan struct{}
	drainOnce sync.Once
	drainMu   sync.Mutex
	wg        sync.WaitGroup // in-flight streaming connections
}

// NewFrontend builds a frontend over the worker set and starts its health
// loop (unless disabled). Callers must Drain for a clean shutdown.
func NewFrontend(cfg ClusterConfig) (*Frontend, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("server: frontend needs at least one worker")
	}
	f := &Frontend{
		cfg:      cfg,
		client:   &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		draining: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Workers {
		if seen[spec.Name] {
			return nil, fmt.Errorf("server: duplicate worker name %q", spec.Name)
		}
		seen[spec.Name] = true
		f.workers = append(f.workers, &workerState{spec: spec})
	}
	f.m = bindClusterMetrics(cfg.Metrics, f)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/match", f.handleMatch)
	mux.HandleFunc("POST /v1/{tenant}/stream", f.handleStream)
	mux.HandleFunc("POST /v1/{tenant}/reload", f.handleReload)
	mux.HandleFunc("GET /v1/workers", f.handleWorkers)
	mux.HandleFunc("GET /healthz", f.handleHealth)
	f.mux = mux
	if cfg.HealthInterval > 0 {
		go f.healthLoop()
	} else {
		close(f.loopDone)
	}
	return f, nil
}

// Handler returns the HTTP handler (mount on any listener).
func (f *Frontend) Handler() http.Handler { return f.mux }

// Drain stops the health loop and new admissions, then waits for in-flight
// streams. Pair with http.Server.Shutdown for a clean SIGTERM exit.
func (f *Frontend) Drain() {
	f.drainOnce.Do(func() {
		close(f.stop)
		f.drainMu.Lock()
		close(f.draining)
		f.drainMu.Unlock()
	})
	<-f.loopDone
	f.wg.Wait()
	f.client.CloseIdleConnections()
}

func (f *Frontend) isDraining() bool {
	select {
	case <-f.draining:
		return true
	default:
		return false
	}
}

func (f *Frontend) enterStream() bool {
	f.drainMu.Lock()
	defer f.drainMu.Unlock()
	if f.isDraining() {
		return false
	}
	f.wg.Add(1)
	return true
}

// healthLoop polls every worker's /healthz on the configured cadence.
func (f *Frontend) healthLoop() {
	defer close(f.loopDone)
	f.CheckWorkers()
	tick := time.NewTicker(f.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.CheckWorkers()
		}
	}
}

// CheckWorkers probes every worker's /healthz once, concurrently, and
// updates the registry. The health verdict feeds /v1/workers and /healthz
// only — correctness never depends on it, since every request tries every
// worker and reports failures explicitly.
func (f *Frontend) CheckWorkers() {
	var wg sync.WaitGroup
	for _, w := range f.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.WorkerTimeout)
			defer cancel()
			err := f.probe(ctx, w)
			w.checkedAt.Store(time.Now().UnixNano())
			if err != nil {
				msg := err.Error()
				w.lastErr.Store(&msg)
				w.healthy.Store(false)
				return
			}
			w.lastErr.Store(nil)
			w.healthy.Store(true)
		}(w)
	}
	wg.Wait()
}

func (f *Frontend) probe(ctx context.Context, w *workerState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.spec.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

func (f *Frontend) healthyCount() int {
	n := 0
	for _, w := range f.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// httpError writes a JSON error body and counts it.
func (f *Frontend) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	f.m.errors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// workerMatch is one worker's leg of a fanned one-shot match.
type workerMatch struct {
	generation int
	rows       []matchJSON
	status     int // worker HTTP status (0 on transport error)
	err        error
}

func (f *Frontend) postMatch(ctx context.Context, w *workerState, tenant string, body []byte) workerMatch {
	f.m.workerRequests.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.spec.URL+"/v1/"+url.PathEscape(tenant)+"/match", bytes.NewReader(body))
	if err != nil {
		return workerMatch{err: err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			f.m.workerTimeouts.Inc()
		}
		f.m.workerErrors.Inc()
		return workerMatch{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		f.m.workerErrors.Inc()
		return workerMatch{status: resp.StatusCode,
			err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
	}
	var mr struct {
		Generation int         `json:"generation"`
		Matches    []matchJSON `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		f.m.workerErrors.Inc()
		return workerMatch{status: resp.StatusCode, err: fmt.Errorf("bad response: %w", err)}
	}
	return workerMatch{generation: mr.Generation, rows: mr.Matches, status: resp.StatusCode}
}

// partialResponse is the degraded-result document: the merged matches from
// the workers that answered, plus the ones that did not. Clients must
// treat the match list as incomplete.
type partialResponse struct {
	Error         string      `json:"error"`
	Tenant        string      `json:"tenant"`
	FailedWorkers []string    `json:"failed_workers"`
	Bytes         int         `json:"bytes"`
	Matches       []matchJSON `json:"matches"`
}

// handleMatch fans the one-shot request to every worker and merges the
// disjoint shard-subset results into the canonical (end, pattern) order —
// byte-identical with a single process hosting all shards. Any failed
// worker leg degrades the response to 502 with the failures named.
func (f *Frontend) handleMatch(w http.ResponseWriter, r *http.Request) {
	if f.isDraining() {
		f.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	tenant := r.PathValue("tenant")
	bb := bodyPool.Get().(*bytes.Buffer)
	bb.Reset()
	defer bodyPool.Put(bb)
	if _, err := bb.ReadFrom(io.LimitReader(r.Body, f.cfg.MaxBodyBytes+1)); err != nil {
		f.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	body := bb.Bytes()
	if int64(len(body)) > f.cfg.MaxBodyBytes {
		f.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", f.cfg.MaxBodyBytes)
		return
	}
	f.m.matchRequests.Inc()
	f.m.bytesIn.Add(int64(len(body)))

	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.WorkerTimeout)
	defer cancel()
	t0 := time.Now()
	results := make([]workerMatch, len(f.workers))
	var wg sync.WaitGroup
	for i, wk := range f.workers {
		wg.Add(1)
		go func(i int, wk *workerState) {
			defer wg.Done()
			results[i] = f.postMatch(ctx, wk, tenant, body)
		}(i, wk)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	f.m.fanoutLatency.Observe(elapsed.Nanoseconds())

	var rows []matchJSON
	var failed []string
	generation, all404 := 0, true
	for i, res := range results {
		if res.err != nil {
			failed = append(failed, f.workers[i].spec.Name)
			if res.status != http.StatusNotFound {
				all404 = false
			}
			continue
		}
		all404 = false
		rows = append(rows, res.rows...)
		if res.generation > generation {
			generation = res.generation
		}
	}
	mergeRows(&rows)
	f.m.reports.Add(int64(len(rows)))

	switch {
	case all404:
		// Every worker rejected the tenant: surface the 404, not a partial.
		f.httpError(w, http.StatusNotFound, "unknown tenant %q on all %d workers", tenant, len(f.workers))
	case len(failed) > 0:
		f.m.partials.Inc()
		f.m.errors.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(partialResponse{
			Error: fmt.Sprintf("partial result: %d of %d workers failed (%s)",
				len(failed), len(f.workers), strings.Join(failed, ", ")),
			Tenant:        tenant,
			FailedWorkers: failed,
			Bytes:         len(body),
			Matches:       rows,
		})
	default:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(matchResponse{
			Tenant:     tenant,
			Generation: generation,
			Bytes:      len(body),
			Matches:    rows,
			ElapsedUS:  elapsed.Microseconds(),
		})
	}
}

// mergeRows sorts the concatenated worker rows into the canonical order
// and drops duplicates. Shard subsets are disjoint, so duplicates only
// appear when the same (end, pattern) fires on patterns split across
// workers' report dedup windows — exactly what the single-process dedup
// collapses, so the merge collapses them too.
func mergeRows(rows *[]matchJSON) {
	sortRows(*rows)
	out := (*rows)[:0]
	for i, row := range *rows {
		if i > 0 && row == (*rows)[i-1] {
			continue
		}
		out = append(out, row)
	}
	*rows = out
}

// clusterStreamDone is the frontend's final NDJSON stream line. On the
// healthy path it carries exactly the single-process fields; a degraded
// stream adds the failed workers and the partial flag.
type clusterStreamDone struct {
	Done          bool     `json:"done"`
	Bytes         int64    `json:"bytes"`
	Matches       int64    `json:"matches"`
	Partial       bool     `json:"partial,omitempty"`
	FailedWorkers []string `json:"failed_workers,omitempty"`
}

// workerStream is one worker's leg of a fanned stream: the frontend tees
// every client chunk into pw, and the reader goroutine relays the worker's
// NDJSON match lines until its done line (or an error) arrives.
type workerStream struct {
	pw      *io.PipeWriter
	dead    atomic.Bool
	done    chan struct{}
	matches int64
	err     error
}

// handleStream fans an NDJSON stream to every worker: client chunks are
// teed into per-worker request bodies as they arrive, worker match lines
// are relayed to the client as they come back (interleaved across workers;
// per-worker order preserved), and the final done line sums the legs. Any
// failed leg flags the done line partial with the worker named.
func (f *Frontend) handleStream(w http.ResponseWriter, r *http.Request) {
	if f.isDraining() {
		f.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if !f.enterStream() {
		f.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer f.wg.Done()
	f.m.streamRequests.Inc()
	tenant := r.PathValue("tenant")

	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	var mu sync.Mutex // serializes relayed lines and the final write
	relay := func(line []byte) {
		mu.Lock()
		defer mu.Unlock()
		_, _ = w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	legs := make([]*workerStream, len(f.workers))
	for i, wk := range f.workers {
		pr, pw := io.Pipe()
		leg := &workerStream{pw: pw, done: make(chan struct{})}
		legs[i] = leg
		go func(wk *workerState, leg *workerStream, pr *io.PipeReader) {
			defer close(leg.done)
			f.m.workerRequests.Inc()
			leg.err = f.relayWorkerStream(r.Context(), wk, tenant, pr, leg, relay)
			if leg.err != nil {
				f.m.workerErrors.Inc()
				leg.dead.Store(true)
				// Unblock the feeder: drain and discard the remaining tee.
				pr.CloseWithError(leg.err)
			}
		}(wk, leg, pr)
	}

	bufp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bufp)
	buf := *bufp
	var total int64
	for {
		n, err := r.Body.Read(buf)
		if n > 0 {
			total += int64(n)
			f.m.bytesIn.Add(int64(n))
			for _, leg := range legs {
				if leg.dead.Load() {
					continue
				}
				if _, werr := leg.pw.Write(buf[:n]); werr != nil {
					leg.dead.Store(true)
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				for _, leg := range legs {
					leg.pw.CloseWithError(err)
				}
				return // client went away; nothing sensible to write
			}
			break
		}
	}
	var matches int64
	var failed []string
	for i, leg := range legs {
		leg.pw.Close()
		<-leg.done
		if leg.err != nil {
			failed = append(failed, f.workers[i].spec.Name)
			continue
		}
		matches += leg.matches
	}
	f.m.reports.Add(matches)
	if len(failed) > 0 {
		f.m.partials.Inc()
	}
	mu.Lock()
	defer mu.Unlock()
	enc := json.NewEncoder(w)
	_ = enc.Encode(clusterStreamDone{
		Done: true, Bytes: total, Matches: matches,
		Partial: len(failed) > 0, FailedWorkers: failed,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// relayWorkerStream runs one worker leg: POST the teed body, relay match
// lines, stop at the worker's done line (recording its match count).
func (f *Frontend) relayWorkerStream(ctx context.Context, wk *workerState, tenant string, body io.Reader, leg *workerStream, relay func([]byte)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wk.spec.URL+"/v1/"+url.PathEscape(tenant)+"/stream", body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	sawDone := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Done    *bool `json:"done"`
			Matches int64 `json:"matches"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		if probe.Done != nil {
			leg.matches = probe.Matches
			sawDone = true
			break
		}
		relay(append(line, '\n'))
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawDone {
		return fmt.Errorf("stream ended without a done line")
	}
	return nil
}

// handleReload fans the tenant reload to every worker and reports the
// per-worker outcome; any failed leg makes the response a 502 (workers
// that did reload keep their new generation — reloads are idempotent).
func (f *Frontend) handleReload(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	type outcome struct {
		Generation int    `json:"generation,omitempty"`
		Error      string `json:"error,omitempty"`
	}
	outcomes := make([]outcome, len(f.workers))
	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.WorkerTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, wk := range f.workers {
		wg.Add(1)
		go func(i int, wk *workerState) {
			defer wg.Done()
			gen, err := f.postReload(ctx, wk, tenant)
			if err != nil {
				outcomes[i] = outcome{Error: err.Error()}
				return
			}
			outcomes[i] = outcome{Generation: gen}
		}(i, wk)
	}
	wg.Wait()
	failed := 0
	byWorker := make(map[string]outcome, len(outcomes))
	for i, o := range outcomes {
		byWorker[f.workers[i].spec.Name] = o
		if o.Error != "" {
			failed++
		}
	}
	code := http.StatusOK
	if failed > 0 {
		f.m.errors.Inc()
		code = http.StatusBadGateway
	} else {
		f.m.reloads.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"tenant": tenant, "workers": byWorker})
}

func (f *Frontend) postReload(ctx context.Context, wk *workerState, tenant string) (int, error) {
	f.m.workerRequests.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wk.spec.URL+"/v1/"+url.PathEscape(tenant)+"/reload", nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.m.workerErrors.Inc()
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		f.m.workerErrors.Inc()
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var body struct {
		Generation int `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		f.m.workerErrors.Inc()
		return 0, fmt.Errorf("bad response: %w", err)
	}
	return body.Generation, nil
}

// workerJSON is one row of the GET /v1/workers listing.
type workerJSON struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
	CheckedAt string `json:"checked_at,omitempty"`
}

func (f *Frontend) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	out := make([]workerJSON, 0, len(f.workers))
	for _, wk := range f.workers {
		row := workerJSON{
			Name:    wk.spec.Name,
			URL:     wk.spec.URL,
			Healthy: wk.healthy.Load(),
		}
		if msg := wk.lastErr.Load(); msg != nil {
			row.LastError = *msg
		}
		if at := wk.checkedAt.Load(); at != 0 {
			row.CheckedAt = time.Unix(0, at).UTC().Format(time.RFC3339)
		}
		out = append(out, row)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func (f *Frontend) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	healthy := f.healthyCount()
	switch {
	case f.isDraining():
		status, code = "draining", http.StatusServiceUnavailable
	case healthy < len(f.workers):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status, "role": "frontend",
		"workers": len(f.workers), "healthy": healthy,
	})
}

// clusterMetrics is the frontend's instrument set (all nil-safe):
//
//	cluster_match_requests_total   one-shot requests fanned out
//	cluster_stream_requests_total  streams fanned out
//	cluster_worker_requests_total  worker legs issued (match/stream/reload)
//	cluster_worker_errors_total    failed worker legs
//	cluster_worker_timeouts_total  worker legs lost to WorkerTimeout
//	cluster_partial_results_total  responses degraded to partial
//	cluster_errors_total           error responses from the frontend
//	cluster_reloads_total          fully successful fanned reloads
//	cluster_bytes_in_total         payload bytes accepted
//	cluster_reports_total          merged matches returned
//	cluster_workers                gauge: configured workers
//	cluster_healthy_workers        gauge: workers passing health checks
//	cluster_fanout_latency_ns      histogram: fan-out round trip per /match
type clusterMetrics struct {
	matchRequests  *obs.Counter
	streamRequests *obs.Counter
	workerRequests *obs.Counter
	workerErrors   *obs.Counter
	workerTimeouts *obs.Counter
	partials       *obs.Counter
	errors         *obs.Counter
	reloads        *obs.Counter
	bytesIn        *obs.Counter
	reports        *obs.Counter
	fanoutLatency  *obs.Histogram
}

func bindClusterMetrics(reg *obs.Registry, f *Frontend) *clusterMetrics {
	m := &clusterMetrics{
		matchRequests:  reg.Counter("cluster_match_requests_total"),
		streamRequests: reg.Counter("cluster_stream_requests_total"),
		workerRequests: reg.Counter("cluster_worker_requests_total"),
		workerErrors:   reg.Counter("cluster_worker_errors_total"),
		workerTimeouts: reg.Counter("cluster_worker_timeouts_total"),
		partials:       reg.Counter("cluster_partial_results_total"),
		errors:         reg.Counter("cluster_errors_total"),
		reloads:        reg.Counter("cluster_reloads_total"),
		bytesIn:        reg.Counter("cluster_bytes_in_total"),
		reports:        reg.Counter("cluster_reports_total"),
		fanoutLatency:  reg.Histogram("cluster_fanout_latency_ns", obs.LatencyBuckets()),
	}
	reg.GaugeFunc("cluster_workers", func() int64 { return int64(len(f.workers)) })
	reg.GaugeFunc("cluster_healthy_workers", func() int64 { return int64(f.healthyCount()) })
	return m
}
