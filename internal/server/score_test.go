package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"impala"
	"impala/internal/workload"
)

// compileScoredMachine seals a scored Levenshtein machine (threshold 5:
// perfect and single-edit reads clear it, two-edit reads do not).
func compileScoredMachine(t *testing.T) *impala.Machine {
	t.Helper()
	n, w, err := workload.ScoredLevenshtein(
		[][]byte{[]byte("ACGTACGT")}, 2, workload.DefaultAlignCosts, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := impala.DefaultConfig()
	cfg.Score = w
	m, err := impala.CompileAutomaton(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScoredTenantMatch: a tenant loaded from a SCOR artifact serves
// threshold-filtered rows with a score field, identical to the in-process
// MatchScored result; binary tenants keep score-free rows.
func TestScoredTenantMatch(t *testing.T) {
	m := compileScoredMachine(t)
	path := writeArtifact(t, m, t.TempDir(), "align.impala")
	s, ts := newTestServer(t, Config{})
	if _, err := s.Tenants().LoadFile("align", path); err != nil {
		t.Fatal(err)
	}

	input := []byte("GGGGACGTACGTCCCCACGAACGTGGGG") // one exact read, one 1-sub read
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no scored matches — test input is inert")
	}

	code, mr := postMatch(t, ts, "align", input)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(mr.Matches) != len(want) {
		t.Fatalf("got %d rows, want %d: %v", len(mr.Matches), len(want), mr.Matches)
	}
	byKey := make(map[[2]int]float64, len(want))
	for _, sm := range want {
		byKey[[2]int{sm.End, sm.Pattern}] = sm.Score
	}
	for _, row := range mr.Matches {
		if row.Score == nil {
			t.Fatalf("scored tenant row missing score: %+v", row)
		}
		if wantSc, ok := byKey[[2]int{row.End, row.Pattern}]; !ok || *row.Score != wantSc {
			t.Fatalf("row %+v: want score %g", row, wantSc)
		}
	}

	// Binary tenants are unchanged: no score key in the response body.
	bin := compileMachine(t, []string{"ACGT"})
	s.Tenants().Install("bin", bin)
	resp, err := http.Post(ts.URL+"/v1/bin/match", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if strings.Contains(raw.String(), "score") {
		t.Fatalf("binary tenant response mentions score: %s", raw.String())
	}
}

// TestScoredTenantStream: the /stream NDJSON lines of a scored tenant carry
// scores and agree with the one-shot scored result.
func TestScoredTenantStream(t *testing.T) {
	m := compileScoredMachine(t)
	s, ts := newTestServer(t, Config{})
	s.Tenants().Install("align", m)

	input := []byte("GGGGACGTACGTCCCCACGAACGTGGGG")
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/align/stream", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	byKey := make(map[[2]int]float64, len(want))
	for _, sm := range want {
		byKey[[2]int{sm.End, sm.Pattern}] = sm.Score
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, `"done"`) {
			continue
		}
		var row matchJSON
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if row.Score == nil {
			t.Fatalf("stream row missing score: %q", line)
		}
		if wantSc, ok := byKey[[2]int{row.End, row.Pattern}]; !ok || *row.Score != wantSc {
			t.Fatalf("stream row %q: want score %g", line, wantSc)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != len(want) {
		t.Fatalf("stream emitted %d rows, one-shot %d", rows, len(want))
	}

	// The tenant listing surfaces the threshold.
	tl, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Body.Close()
	var listing []tenantJSON
	if err := json.NewDecoder(tl.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 1 || listing[0].ScoreThreshold == nil || *listing[0].ScoreThreshold != 5 {
		t.Fatalf("tenant listing missing score threshold: %+v", listing)
	}
}
