package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"impala"
	"impala/internal/obs"
	"impala/internal/topo"
)

// clusterFixture is a two-worker deployment of one sealed artifact: a
// 2-shard machine placed onto two domains, one worker process (well,
// httptest server) per domain, a frontend fanning over both, and a
// single-process server over the full artifact as the reference.
type clusterFixture struct {
	machine *impala.Machine // full machine, in-process reference
	path    string          // sealed artifact (workers reload from it)
	domains []string
	workers []*httptest.Server
	fe      *Frontend
	feTS    *httptest.Server
	single  *httptest.Server
	reg     *obs.Registry
}

func newClusterFixture(t *testing.T) *clusterFixture {
	t.Helper()
	cfg := impala.DefaultConfig()
	cfg.Shards = 2
	m, err := impala.CompileRegex([]string{"GET /", "needle", "ab+a", "zz.?zz"}, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a := m.Artifact()
	tp := topo.Topology{Domains: []topo.Domain{{Name: "n0"}, {Name: "n1"}}}
	mw, err := topo.MergeWeights(a.NFA, a.Shards.Plan)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := topo.Place(a.Shards.Plan, mw, tp, topo.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.SetTopo(&topo.Sealed{Topology: tp, ShardDomain: pl.ShardDomain})
	path := filepath.Join(t.TempDir(), "web.impala")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	f := &clusterFixture{machine: m, path: path, domains: []string{"n0", "n1"}}
	var specs []WorkerSpec
	for _, dom := range f.domains {
		ws, wts := newTestServer(t, Config{})
		if _, err := ws.Tenants().LoadFileDomain("web", path, dom); err != nil {
			t.Fatalf("worker %s: %v", dom, err)
		}
		f.workers = append(f.workers, wts)
		specs = append(specs, WorkerSpec{Name: dom, URL: wts.URL})
	}

	f.reg = obs.NewRegistry()
	fe, err := NewFrontend(ClusterConfig{
		Workers:        specs,
		HealthInterval: -1, // tests drive CheckWorkers explicitly
		Metrics:        f.reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.fe = fe
	f.feTS = httptest.NewServer(fe.Handler())
	t.Cleanup(func() {
		f.feTS.Close()
		fe.Drain()
	})

	ss, sts := newTestServer(t, Config{})
	if _, err := ss.Tenants().LoadFile("web", path); err != nil {
		t.Fatal(err)
	}
	f.single = sts
	return f
}

// wantRows is the in-process reference in canonical (end, pattern) order.
func (f *clusterFixture) wantRows(input []byte) []matchJSON {
	var rows []matchJSON
	for _, m := range f.machine.Match(input) {
		rows = append(rows, matchJSON{End: m.End, Pattern: m.Pattern})
	}
	sortRows(rows)
	return rows
}

var clusterInput = []byte(strings.Repeat("GET /idx abba zzAzz needle abbbba GET needle / ", 8))

// TestClusterMergeMatchesSingleProcess is the dispatch acceptance property:
// the frontend's merged one-shot response is indistinguishable from a
// single process hosting every shard — same rows, same order, same
// envelope — and both equal the in-process match.
func TestClusterMergeMatchesSingleProcess(t *testing.T) {
	f := newClusterFixture(t)
	want := f.wantRows(clusterInput)
	if len(want) == 0 {
		t.Fatal("fixture input produces no matches; test is vacuous")
	}

	code, fr := postMatch(t, f.feTS, "web", clusterInput)
	if code != http.StatusOK {
		t.Fatalf("frontend status %d", code)
	}
	scode, sr := postMatch(t, f.single, "web", clusterInput)
	if scode != http.StatusOK {
		t.Fatalf("single-process status %d", scode)
	}

	if !reflect.DeepEqual(fr.Matches, want) {
		t.Fatalf("frontend rows diverge from in-process:\n%v\n%v", fr.Matches, want)
	}
	// Byte-identity of the row payloads across deployment shapes.
	fb, _ := json.Marshal(fr.Matches)
	sb, _ := json.Marshal(sr.Matches)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("merged rows not byte-identical with single process:\n%s\n%s", fb, sb)
	}
	if fr.Tenant != sr.Tenant || fr.Bytes != sr.Bytes || fr.Generation != sr.Generation {
		t.Fatalf("envelopes diverge: %+v vs %+v", fr, sr)
	}

	snap := f.reg.Snapshot()
	if snap.Counters["cluster_match_requests_total"] != 1 {
		t.Fatalf("match counter: %v", snap.Counters)
	}
	if snap.Counters["cluster_worker_requests_total"] != 2 {
		t.Fatalf("worker-leg counter: %v", snap.Counters)
	}
	if got := snap.Counters["cluster_reports_total"]; got != int64(len(want)) {
		t.Fatalf("reports counter %d, want %d", got, len(want))
	}
}

// TestClusterWorkerFailurePartial: a dead worker degrades the one-shot
// request to an explicit 502 partial-result document naming the failure —
// never a silently incomplete 200.
func TestClusterWorkerFailurePartial(t *testing.T) {
	f := newClusterFixture(t)
	// The surviving worker's rows are the expected partial payload.
	_, n0 := postMatch(t, f.workers[0], "web", clusterInput)
	f.workers[1].Close()

	resp, err := http.Post(f.feTS.URL+"/v1/web/match", "application/octet-stream", bytes.NewReader(clusterInput))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var pr partialResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr.FailedWorkers, []string{"n1"}) {
		t.Fatalf("failed workers %v, want [n1]", pr.FailedWorkers)
	}
	if !strings.Contains(pr.Error, "partial result") || pr.Tenant != "web" || pr.Bytes != len(clusterInput) {
		t.Fatalf("bad partial envelope: %+v", pr)
	}
	sortRows(n0.Matches)
	if !reflect.DeepEqual(pr.Matches, n0.Matches) {
		t.Fatalf("partial rows diverge from surviving worker:\n%v\n%v", pr.Matches, n0.Matches)
	}

	snap := f.reg.Snapshot()
	if snap.Counters["cluster_partial_results_total"] != 1 {
		t.Fatalf("partial counter: %v", snap.Counters)
	}
	if snap.Counters["cluster_worker_errors_total"] == 0 {
		t.Fatalf("worker-error counter: %v", snap.Counters)
	}
}

// TestClusterUnknownTenant: every worker 404s → the frontend surfaces 404,
// not a partial-result 502.
func TestClusterUnknownTenant(t *testing.T) {
	f := newClusterFixture(t)
	if code, _ := postMatch(t, f.feTS, "nosuch", []byte("x")); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
}

// clusterStream drives one /stream request against the frontend and decodes
// the cluster done line (which carries the partial fields).
func clusterStream(t *testing.T, ts *httptest.Server, tenant string, input []byte) ([]matchJSON, clusterStreamDone) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/"+tenant+"/stream", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var rows []matchJSON
	var done clusterStreamDone
	sawDone := false
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if bytes.Contains(raw, []byte(`"done"`)) {
			if err := json.Unmarshal(raw, &done); err != nil {
				t.Fatal(err)
			}
			sawDone = true
			continue
		}
		var mj matchJSON
		if err := json.Unmarshal(raw, &mj); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, mj)
	}
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}
	return rows, done
}

// TestClusterStreamFanout: streamed matches from both workers (interleaved
// on the wire, per-worker order preserved) cover exactly the in-process
// match set, and the done line sums the legs.
func TestClusterStreamFanout(t *testing.T) {
	f := newClusterFixture(t)
	want := f.wantRows(clusterInput)

	// Chunked client exercises the tee path; plain POST the simple path.
	got, sdone, err := streamClient(f.feTS, "web", clusterInput, 7)
	if err != nil {
		t.Fatal(err)
	}
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked stream rows diverge:\n%v\n%v", got, want)
	}
	if sdone.Bytes != int64(len(clusterInput)) || sdone.Matches != int64(len(want)) || !sdone.Done {
		t.Fatalf("bad chunked summary: %+v for %d matches", sdone, len(want))
	}

	rows, done := clusterStream(t, f.feTS, "web", clusterInput)
	sortRows(rows)
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("stream rows diverge:\n%v\n%v", rows, want)
	}
	if done.Partial || len(done.FailedWorkers) != 0 {
		t.Fatalf("healthy stream flagged partial: %+v", done)
	}
}

// TestClusterStreamWorkerFailure: a dead worker leg flags the stream's done
// line partial with the worker named; the surviving leg's rows still flow.
func TestClusterStreamWorkerFailure(t *testing.T) {
	f := newClusterFixture(t)
	_, n0 := postMatch(t, f.workers[0], "web", clusterInput)
	f.workers[1].Close()

	rows, done := clusterStream(t, f.feTS, "web", clusterInput)
	if !done.Done || !done.Partial {
		t.Fatalf("degraded stream not flagged partial: %+v", done)
	}
	if !reflect.DeepEqual(done.FailedWorkers, []string{"n1"}) {
		t.Fatalf("failed workers %v, want [n1]", done.FailedWorkers)
	}
	sortRows(rows)
	sortRows(n0.Matches)
	if !reflect.DeepEqual(rows, n0.Matches) {
		t.Fatalf("degraded stream rows diverge from surviving worker:\n%v\n%v", rows, n0.Matches)
	}
	if snap := f.reg.Snapshot(); snap.Counters["cluster_partial_results_total"] != 1 {
		t.Fatalf("partial counter: %v", snap.Counters)
	}
}

// TestClusterReloadFanout: a fanned reload bumps every worker's generation;
// once the artifact is gone, the fan-out degrades to 502 with per-worker
// errors (reloads are idempotent, so no rollback is needed).
func TestClusterReloadFanout(t *testing.T) {
	f := newClusterFixture(t)
	type outcome struct {
		Generation int    `json:"generation"`
		Error      string `json:"error"`
	}
	reload := func() (int, map[string]outcome) {
		resp, err := http.Post(f.feTS.URL+"/v1/web/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Tenant  string             `json:"tenant"`
			Workers map[string]outcome `json:"workers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Workers
	}

	code, workers := reload()
	if code != http.StatusOK {
		t.Fatalf("reload status %d", code)
	}
	for _, dom := range f.domains {
		if workers[dom].Generation != 2 || workers[dom].Error != "" {
			t.Fatalf("worker %s after reload: %+v", dom, workers[dom])
		}
	}
	if snap := f.reg.Snapshot(); snap.Counters["cluster_reloads_total"] != 1 {
		t.Fatalf("reload counter: %v", snap.Counters)
	}

	if err := os.Remove(f.path); err != nil {
		t.Fatal(err)
	}
	code, workers = reload()
	if code != http.StatusBadGateway {
		t.Fatalf("reload without artifact: status %d, want 502", code)
	}
	for _, dom := range f.domains {
		if workers[dom].Error == "" {
			t.Fatalf("worker %s reported no error: %+v", dom, workers[dom])
		}
	}
	// The failed reload must not have disturbed serving.
	if code, _ := postMatch(t, f.feTS, "web", clusterInput); code != http.StatusOK {
		t.Fatalf("match after failed reload: status %d", code)
	}
}

// TestClusterWorkersAndHealth: the health endpoints reflect CheckWorkers
// verdicts — informational only, but accurate.
func TestClusterWorkersAndHealth(t *testing.T) {
	f := newClusterFixture(t)
	health := func() (int, map[string]any) {
		resp, err := http.Get(f.feTS.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	listWorkers := func() []workerJSON {
		resp, err := http.Get(f.feTS.URL + "/v1/workers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rows []workerJSON
		if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
			t.Fatal(err)
		}
		return rows
	}

	// Before any check, workers are conservatively unhealthy.
	if code, body := health(); code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("pre-check health: %d %v", code, body)
	}
	f.fe.CheckWorkers()
	code, body := health()
	if code != http.StatusOK || body["status"] != "ok" || body["healthy"].(float64) != 2 {
		t.Fatalf("healthy cluster: %d %v", code, body)
	}
	for _, row := range listWorkers() {
		if !row.Healthy || row.LastError != "" || row.CheckedAt == "" {
			t.Fatalf("healthy worker row: %+v", row)
		}
	}
	if snap := f.reg.Snapshot(); snap.Gauges["cluster_healthy_workers"] != 2 {
		t.Fatalf("healthy gauge: %v", snap.Gauges)
	}

	f.workers[0].Close()
	f.fe.CheckWorkers()
	if code, body := health(); code != http.StatusOK || body["status"] != "degraded" || body["healthy"].(float64) != 1 {
		t.Fatalf("degraded cluster: %d %v", code, body)
	}
	for _, row := range listWorkers() {
		if row.Name == "n0" && (row.Healthy || row.LastError == "") {
			t.Fatalf("dead worker row: %+v", row)
		}
		if row.Name == "n1" && !row.Healthy {
			t.Fatalf("live worker row: %+v", row)
		}
	}
}

// TestClusterDrain: a draining frontend refuses new work with 503 and
// reports it on /healthz.
func TestClusterDrain(t *testing.T) {
	f := newClusterFixture(t)
	f.fe.Drain()
	if code, _ := postMatch(t, f.feTS, "web", clusterInput); code != http.StatusServiceUnavailable {
		t.Fatalf("match while draining: status %d, want 503", code)
	}
	resp, err := http.Post(f.feTS.URL+"/v1/web/stream", "application/octet-stream", bytes.NewReader(clusterInput))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream while draining: status %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(f.feTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hr.StatusCode)
	}
}

func TestParseWorkers(t *testing.T) {
	good := []struct {
		in   string
		want []WorkerSpec
	}{
		{"http://h1:8600", []WorkerSpec{{Name: "h1:8600", URL: "http://h1:8600"}}},
		{"a=http://h1:8600, b=http://h2:8600/", []WorkerSpec{
			{Name: "a", URL: "http://h1:8600"}, {Name: "b", URL: "http://h2:8600"}}},
		{"http://h1:1,http://h2:2", []WorkerSpec{
			{Name: "h1:1", URL: "http://h1:1"}, {Name: "h2:2", URL: "http://h2:2"}}},
	}
	for _, tc := range good {
		got, err := ParseWorkers(tc.in)
		if err != nil {
			t.Errorf("ParseWorkers(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseWorkers(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"",                                 // no workers
		" , ",                              // only separators
		"h1:8600",                          // no scheme
		"a=notaurl",                        // unparsable
		"a=http://h1:1,a=http://h2:2",      // duplicate explicit names
		"http://h1:8600,http://h1:8600",    // duplicate derived names
		"a=http://h1:1,h1:2=http://h1:2=x", // junk
	}
	for _, in := range bad {
		if got, err := ParseWorkers(in); err == nil {
			t.Errorf("ParseWorkers(%q) accepted: %+v", in, got)
		}
	}
}

// TestClusterHealthLoop: with a positive interval the background loop
// drives CheckWorkers on its own — the production path the hermetic tests
// otherwise disable.
func TestClusterHealthLoop(t *testing.T) {
	f := newClusterFixture(t)
	fe, err := NewFrontend(ClusterConfig{
		Workers: []WorkerSpec{
			{Name: "n0", URL: f.workers[0].URL},
			{Name: "n1", URL: f.workers[1].URL},
		},
		HealthInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for fe.healthyCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked both workers healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNewFrontendErrors(t *testing.T) {
	if _, err := NewFrontend(ClusterConfig{}); err == nil {
		t.Fatal("frontend without workers accepted")
	}
	_, err := NewFrontend(ClusterConfig{Workers: []WorkerSpec{
		{Name: "a", URL: "http://h1:1"}, {Name: "a", URL: "http://h2:2"}}})
	if err == nil {
		t.Fatal("duplicate worker names accepted")
	}
}
