package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"impala"
	"impala/internal/obs"
)

func compileMachine(t *testing.T, patterns []string) *impala.Machine {
	t.Helper()
	m, err := impala.CompileRegex(patterns, impala.DefaultConfig())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func writeArtifact(t *testing.T, m *impala.Machine, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := m.Artifact().WriteFile(path); err != nil {
		t.Fatalf("write artifact: %v", err)
	}
	return path
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postMatch(t *testing.T, ts *httptest.Server, tenant string, body []byte) (int, matchResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/"+tenant+"/match", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var mr matchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode, mr
}

// TestMatchAgainstInProcess is the serving acceptance property: the HTTP
// /match result over an artifact-loaded tenant is identical to the
// in-process match on the machine that produced the artifact.
func TestMatchAgainstInProcess(t *testing.T) {
	m := compileMachine(t, []string{"GET /", "needle", "ab+a"})
	path := writeArtifact(t, m, t.TempDir(), "web.impala")
	s, ts := newTestServer(t, Config{})
	if _, err := s.Tenants().LoadFile("web", path); err != nil {
		t.Fatal(err)
	}

	input := []byte("GET /index abba needle abbbba GET needle /")
	want := m.Match(input)
	// The serving boundary emits rows in canonical (end, pattern) order.
	sort.Slice(want, func(i, j int) bool {
		if want[i].End != want[j].End {
			return want[i].End < want[j].End
		}
		return want[i].Pattern < want[j].Pattern
	})

	code, mr := postMatch(t, ts, "web", input)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if mr.Tenant != "web" || mr.Generation != 1 || mr.Bytes != len(input) {
		t.Fatalf("bad envelope: %+v", mr)
	}
	if len(mr.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d: %v vs %v", len(mr.Matches), len(want), mr.Matches, want)
	}
	for i, w := range want {
		if mr.Matches[i].End != w.End || mr.Matches[i].Pattern != w.Pattern {
			t.Fatalf("match %d: got %+v, want %+v", i, mr.Matches[i], w)
		}
	}
}

func TestMatchErrorPaths(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	s, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	s.Tenants().Install("t", m)

	if code, _ := postMatch(t, ts, "nosuch", []byte("x")); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
	if code, _ := postMatch(t, ts, "t", bytes.Repeat([]byte("y"), 65)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", code)
	}
	resp, err := http.Get(ts.URL + "/v1/t/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET match: status %d, want 405", resp.StatusCode)
	}
}

// streamClient drives one chunked /stream request, feeding input in small
// writes, and returns the match lines and the final summary.
func streamClient(ts *httptest.Server, tenant string, input []byte, chunk int) ([]matchJSON, streamDone, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/"+tenant+"/stream", pr)
	if err != nil {
		return nil, streamDone{}, err
	}
	go func() {
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			if _, err := pw.Write(input[off:end]); err != nil {
				return
			}
			// Yield so chunks actually interleave across clients.
			time.Sleep(time.Millisecond)
		}
		pw.Close()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, streamDone{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, streamDone{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var matches []matchJSON
	var done streamDone
	sawDone := false
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				break
			}
			return nil, streamDone{}, err
		}
		if bytes.Contains(raw, []byte(`"done"`)) {
			if err := json.Unmarshal(raw, &done); err != nil {
				return nil, streamDone{}, err
			}
			sawDone = true
			continue
		}
		var mj matchJSON
		if err := json.Unmarshal(raw, &mj); err != nil {
			return nil, streamDone{}, err
		}
		matches = append(matches, mj)
	}
	if !sawDone {
		return nil, streamDone{}, fmt.Errorf("stream ended without a done line")
	}
	return matches, done, nil
}

func TestStreamEndpoint(t *testing.T) {
	m := compileMachine(t, []string{"needle"})
	s, ts := newTestServer(t, Config{})
	s.Tenants().Install("t", m)

	input := []byte(strings.Repeat("hay needle stack ", 40))
	want := m.Match(input)
	got, done, err := streamClient(ts, "t", input, 7)
	if err != nil {
		t.Fatal(err)
	}
	if done.Bytes != int64(len(input)) || done.Matches != int64(len(got)) || !done.Done {
		t.Fatalf("bad summary: %+v for %d matches", done, len(got))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].End != w.End || got[i].Pattern != w.Pattern {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], w)
		}
	}
}

// TestConcurrentStreamsWithHotReload is the serving stress acceptance: two
// tenants, many concurrent chunked streaming clients, and a mid-run
// hot-reload of one tenant. Every stream must complete with exactly the
// matches of its tenant's machine, race-free (run under -race in CI).
func TestConcurrentStreamsWithHotReload(t *testing.T) {
	dir := t.TempDir()
	mWeb := compileMachine(t, []string{"GET /", "POST /"})
	mIDS := compileMachine(t, []string{"attack", "evil"})
	webPath := writeArtifact(t, mWeb, dir, "web.impala")
	idsPath := writeArtifact(t, mIDS, dir, "ids.impala")

	s, ts := newTestServer(t, Config{MaxStreams: 64})
	if _, err := s.Tenants().LoadFile("web", webPath); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tenants().LoadFile("ids", idsPath); err != nil {
		t.Fatal(err)
	}

	webInput := []byte(strings.Repeat("GET /a POST /b xx ", 60))
	idsInput := []byte(strings.Repeat("an evil attack here ", 60))
	webWant := mWeb.Match(webInput)
	idsWant := mIDS.Match(idsInput)

	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		tenant, input, want := "web", webInput, webWant
		if i%2 == 1 {
			tenant, input, want = "ids", idsInput, idsWant
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			got, done, err := streamClient(ts, tenant, input, 16)
			if err != nil {
				errs <- fmt.Errorf("client %d (%s): %v", id, tenant, err)
				return
			}
			if done.Bytes != int64(len(input)) {
				errs <- fmt.Errorf("client %d (%s): fed %d bytes, server saw %d", id, tenant, len(input), done.Bytes)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("client %d (%s): %d matches, want %d", id, tenant, len(got), len(want))
				return
			}
			for j, w := range want {
				if got[j].End != w.End || got[j].Pattern != w.Pattern {
					errs <- fmt.Errorf("client %d (%s): match %d is %+v, want %+v", id, tenant, j, got[j], w)
					return
				}
			}
		}(i)
	}

	// Hot-reload the web tenant while the streams are mid-flight: in-flight
	// connections keep their snapshot; the registry moves to generation 2.
	time.Sleep(10 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/v1/web/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl struct {
		Tenant     string `json:"tenant"`
		Generation int    `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Generation != 2 {
		t.Fatalf("reload: status %d, generation %d", resp.StatusCode, rl.Generation)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Post-reload requests serve from the new generation.
	code, mr := postMatch(t, ts, "web", webInput)
	if code != http.StatusOK || mr.Generation != 2 {
		t.Fatalf("post-reload match: status %d, generation %d", code, mr.Generation)
	}
}

func TestStreamLimit(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	s, ts := newTestServer(t, Config{MaxStreams: 1})
	s.Tenants().Install("t", m)

	pr, pw := io.Pipe()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/t/stream", pr)
	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			respc <- resp
		}
	}()
	// Wait until the first stream holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.cfg.MaxStreams-len(s.streamSem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("first stream never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp2, err := http.Post(ts.URL+"/v1/t/stream", "", strings.NewReader("zz"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: status %d, want 503", resp2.StatusCode)
	}
	pw.Close()
	resp := <-respc
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestReloadAndEvictErrors(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	s, ts := newTestServer(t, Config{})
	s.Tenants().Install("direct", m)

	// Reloading a tenant installed without an artifact path must fail 409
	// and leave it serving.
	resp, err := http.Post(ts.URL+"/v1/direct/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload direct: status %d, want 409", resp.StatusCode)
	}
	if code, _ := postMatch(t, ts, "direct", []byte("x")); code != http.StatusOK {
		t.Fatalf("tenant lost after failed reload: %d", code)
	}

	resp, err = http.Post(ts.URL+"/v1/ghost/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload ghost: status %d, want 409", resp.StatusCode)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/direct", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("evict: status %d, want 204", resp.StatusCode)
	}
	if code, _ := postMatch(t, ts, "direct", []byte("x")); code != http.StatusNotFound {
		t.Fatalf("evicted tenant still serving: %d", code)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/direct", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double evict: status %d, want 404", resp.StatusCode)
	}
}

func TestTenantsListing(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	path := writeArtifact(t, m, t.TempDir(), "a.impala")
	s, ts := newTestServer(t, Config{})
	if _, err := s.Tenants().LoadFile("alpha", path); err != nil {
		t.Fatal(err)
	}
	s.Tenants().Install("beta", m)

	resp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []tenantJSON
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].Name != "beta" {
		t.Fatalf("bad listing: %+v", rows)
	}
	if rows[0].Path == "" || rows[0].States <= 0 || rows[0].Stride <= 0 {
		t.Fatalf("alpha row missing artifact detail: %+v", rows[0])
	}
}

func TestDrainRejectsAndHealthz(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Tenants().Install("t", m)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	s.Drain()

	if code, _ := postMatch(t, ts, "t", []byte("x")); code != http.StatusServiceUnavailable {
		t.Fatalf("match while draining: %d, want 503", code)
	}
	resp, err = http.Post(ts.URL+"/v1/t/stream", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

func TestDrainWaitsForStreams(t *testing.T) {
	m := compileMachine(t, []string{"x"})
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Tenants().Install("t", m)

	pr, pw := io.Pipe()
	req, _ := http.NewRequest("POST", ts.URL+"/v1/t/stream", pr)
	respc := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			respc <- resp
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.streamSem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never started")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned while a stream was still open")
	case <-time.After(30 * time.Millisecond):
	}
	pw.Write([]byte("xx"))
	pw.Close()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never completed after the stream ended")
	}
	resp := <-respc
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestMetricsBound(t *testing.T) {
	reg := obs.NewRegistry()
	m := compileMachine(t, []string{"x"})
	s, ts := newTestServer(t, Config{Metrics: reg})
	s.Tenants().Install("t", m)
	postMatch(t, ts, "t", []byte("xx"))
	snap := reg.Snapshot()
	if snap.Counters["serve_match_requests_total"] != 1 {
		t.Fatalf("match counter: %v", snap.Counters["serve_match_requests_total"])
	}
	if snap.Gauges["serve_tenants"] != 1 {
		t.Fatalf("tenant gauge: %v", snap.Gauges["serve_tenants"])
	}
	if snap.Counters["serve_bytes_in_total"] != 2 {
		t.Fatalf("bytes counter: %v", snap.Counters["serve_bytes_in_total"])
	}
	if snap.Histograms["serve_match_latency_ns"].Count != 1 {
		t.Fatalf("latency histogram: %+v", snap.Histograms["serve_match_latency_ns"])
	}
}

// TestMatchHandlerAllocs pins the steady-state allocation cost of the
// one-shot /match path. The body, row and chunk pools recycle the
// per-request buffers, so what remains is the engine run, the JSON encode
// and net/http plumbing — dropping one of the pools shows up as a jump
// well past the bound.
func TestMatchHandlerAllocs(t *testing.T) {
	m := compileMachine(t, []string{"GET /", "needle"})
	s := New(Config{Workers: 1})
	t.Cleanup(s.Drain)
	s.Tenants().Install("alloc", m)
	h := s.Handler()
	input := bytes.Repeat([]byte("GET /index needle "), 64)

	run := func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/alloc/match", bytes.NewReader(input))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("match status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	run() // warm the pools and the engine cache

	allocs := testing.AllocsPerRun(100, run)
	t.Logf("allocs per /match request: %.1f", allocs)
	const limit = 100
	if allocs > limit {
		t.Errorf("/match allocates %.1f objects per request, want <= %d", allocs, limit)
	}
}
