package backend

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"impala/internal/automata"
	"impala/internal/interconnect"
	"impala/internal/place"
)

// camBackend models a CAMA-style content-addressable-memory automata target
// (PAPERS.md: "CAMA: Energy and Memory Efficient Automata Processing in
// Content-Addressable Memories", and Kong et al.'s software-hardware
// codesign follow-up). The state-matching structure is inverted relative to
// Impala: instead of reading one 16-cell column per state per dimension,
// the automaton is stored as dense ternary rows in TCAM banks — one row per
// match rect, each row holding the rect's per-dimension symbol pattern as
// 2-bit ternary cells — and the input chunk is broadcast as a search key,
// with all rows compared associatively in one access. Consequences the
// model captures:
//
//   - Capacity is denominated in rows, not states: a state whose match set
//     needs k rects occupies k rows, so Model.Rows ≥ states and the
//     capacity comparison against Impala is genuinely different.
//   - There is no capsule-legality constraint (a ternary row encodes any
//     rect directly), so the Espresso refinement stage is skipped — the
//     compiled automaton keeps its pre-refinement shape.
//   - Next-state routing is a per-bank SRAM indexed by match-line hits with
//     a global enable broadcast, not a G4 switch fabric: any transition is
//     routable, so placement is plain row packing and never fails.
//   - The search access (match-line precharge + compare + priority encode)
//     is slower than Impala's 16-row column read, and every occupied bank
//     burns search energy every cycle — the energy/throughput trade the
//     backendcmp tables surface.
type camBackend struct{}

// CAM bank parameter table at the paper's 14nm/0.8V node, mirroring the
// shape of arch's Table 3. A bank is 256 ternary rows; each row holds up to
// 16 symbol bits (the 8-bit × stride-2 design point) of 2-bit ternary
// cells plus its next-state field. Delay covers search-line drive,
// match-line evaluation and priority encoding; energy is one full-bank
// associative search (all match lines precharged every access — TCAM's
// fundamental cost); area reflects the ~2× cell size of ternary storage
// versus 6T SRAM.
const (
	camBankRows       = 256    // ternary rows per bank
	camSearchDelayPs  = 530.0  // full associative search access
	camSearchEnergyPJ = 0.9    // one bank search (all rows precharged)
	camMatchAreaUM2   = 5600.0 // ternary cell array per bank
	camRouteAreaUM2   = 2600.0 // next-state SRAM + enable broadcast per bank
	camUnitBanks      = 128    // replication unit: 128 banks = 32K rows
)

// CamName is the registry name of the CAM backend.
const CamName = "cam"

func (camBackend) Name() string { return CamName }

// Version seals the parameter-table/codec revision into artifacts.
func (camBackend) Version() int { return 1 }

func (camBackend) Description() string {
	return "CAMA-style TCAM match arrays: dense ternary rows, associative search, no capsule refinement"
}

func (camBackend) DefaultGeometry() (int, int) { return 8, 2 }

// ValidateGeometry: CAM rows store whole 8-bit symbols as ternary
// patterns; the bank's 16-symbol-bit row width supports one or two symbols
// per search.
func (camBackend) ValidateGeometry(bits, strideDims int) error {
	if bits != 8 {
		return fmt.Errorf("backend %s: TCAM rows store 8-bit symbols, got %d-bit target", CamName, bits)
	}
	switch strideDims {
	case 1, 2:
		return nil
	default:
		return fmt.Errorf("backend %s: 8-bit TCAM rows support stride dims 1/2, got %d", CamName, strideDims)
	}
}

// NeedsRefine: ternary rows encode arbitrary rects, so capsule refinement
// never applies.
func (camBackend) NeedsRefine() bool { return false }

// rowsOf returns the TCAM rows a state occupies: one per match rect (a
// stateless fallback of one row for rect-free states keeps the count
// well-defined on degenerate automata).
func rowsOf(s *automata.State) int {
	if len(s.Match) == 0 {
		return 1
	}
	return len(s.Match)
}

// totalRows sums the row occupancy of the whole automaton.
func totalRows(n *automata.NFA) int {
	rows := 0
	for i := range n.States {
		rows += rowsOf(&n.States[i])
	}
	return rows
}

// Place packs states into 256-row banks. Any transition is routable (the
// next-state broadcast is bank-global), so packing only has to respect the
// per-bank row budget; connected components are kept together when they
// fit (first-fit decreasing, deterministic) and split across fresh banks
// when they do not. Each bank is encoded as one placement group with
// sequential slot labels, which the artifact's PLAC codec round-trips
// unchanged.
func (camBackend) Place(n *automata.NFA, opts place.Options) (*place.Placement, error) {
	type bankState struct {
		free   int
		states []automata.StateID
	}
	ccs := n.ConnectedComponents()
	ccRows := make([]int, len(ccs))
	order := make([]int, len(ccs))
	for i, cc := range ccs {
		order[i] = i
		for _, id := range cc {
			ccRows[i] += rowsOf(&n.States[id])
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return ccRows[order[a]] > ccRows[order[b]] })

	var banks []*bankState
	for _, ci := range order {
		cc := ccs[ci]
		if ccRows[ci] <= camBankRows {
			placed := false
			for _, b := range banks {
				if b.free >= ccRows[ci] {
					b.states = append(b.states, cc...)
					b.free -= ccRows[ci]
					placed = true
					break
				}
			}
			if !placed {
				banks = append(banks, &bankState{free: camBankRows - ccRows[ci], states: append([]automata.StateID(nil), cc...)})
			}
			continue
		}
		// Oversized component: stream states into fresh banks.
		cur := &bankState{free: camBankRows}
		banks = append(banks, cur)
		for _, id := range cc {
			need := rowsOf(&n.States[id])
			if need > camBankRows {
				return nil, fmt.Errorf("backend %s: state %d needs %d rows, bank holds %d", CamName, id, need, camBankRows)
			}
			if cur.free < need {
				cur = &bankState{free: camBankRows}
				banks = append(banks, cur)
			}
			cur.states = append(cur.states, id)
			cur.free -= need
		}
	}

	out := &place.Placement{}
	inBank := make([]int, n.NumStates())
	for bi, b := range banks {
		for _, id := range b.states {
			inBank[id] = bi
		}
	}
	for bi, b := range banks {
		g := &place.G4Placement{
			Slots:  make([]automata.StateID, interconnect.G4Size),
			SlotOf: make(map[automata.StateID]int, len(b.states)),
			States: len(b.states),
		}
		for i := range g.Slots {
			g.Slots[i] = -1
		}
		for slot, id := range b.states {
			g.Slots[slot] = id
			g.SlotOf[id] = slot
		}
		for _, id := range b.states {
			for _, t := range n.States[id].Out {
				if inBank[t] == bi {
					g.Edges++
				}
			}
		}
		out.G4s = append(out.G4s, g)
	}
	return out, nil
}

// Model evaluates the CAM capacity/energy/area tables.
func (b camBackend) Model(n *automata.NFA) Model {
	rows := totalRows(n)
	banks := (rows + camBankRows - 1) / camBankRows
	bitsPerCycle := n.BitsPerCycle()
	freq := 0.9 * 1000.0 / camSearchDelayPs // same 10% derate as arch.FreqDerate
	throughput := freq * float64(bitsPerCycle)
	unitCapacity := camUnitBanks * camBankRows
	units := (rows + unitCapacity - 1) / unitCapacity
	if rows == 0 {
		units = 0
	}
	unitMM2 := float64(camUnitBanks) * (camMatchAreaUM2 + camRouteAreaUM2) / 1e6
	perArea := 0.0
	if units > 0 {
		perArea = throughput / (float64(units) * unitMM2)
	}
	bytesPerCycle := float64(bitsPerCycle) / 8.0
	return Model{
		Design:           fmt.Sprintf("CAM (%d-bit)", bitsPerCycle),
		BitsPerCycle:     bitsPerCycle,
		Rows:             rows,
		UnitCapacity:     unitCapacity,
		Units:            units,
		FreqGHz:          freq,
		ThroughputGbps:   throughput,
		MatchMM2:         float64(banks) * camMatchAreaUM2 / 1e6,
		RouteMM2:         float64(banks) * camRouteAreaUM2 / 1e6,
		TotalMM2:         float64(banks) * (camMatchAreaUM2 + camRouteAreaUM2) / 1e6,
		ThroughputPerMM2: perArea,
		PJPerByte:        float64(banks) * camSearchEnergyPJ / bytesPerCycle,
	}
}

// camSectionVersion is the backend-owned artifact payload layout revision.
const camSectionVersion = 1

// SealSection encodes the CAM summary the loader cross-checks: the row
// occupancy and bank count the automaton and placement imply, plus the
// parameter-table revision they were sealed under.
func (c camBackend) SealSection(n *automata.NFA, pl *place.Placement) ([]byte, error) {
	if pl == nil {
		return nil, fmt.Errorf("backend %s: sealing requires a placement", CamName)
	}
	rows := totalRows(n)
	if rows > math.MaxUint32 || len(pl.G4s) > math.MaxUint32 {
		return nil, fmt.Errorf("backend %s: automaton too large to seal (%d rows)", CamName, rows)
	}
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint16(buf[0:], camSectionVersion)
	binary.LittleEndian.PutUint16(buf[2:], camBankRows)
	binary.LittleEndian.PutUint32(buf[4:], uint32(rows))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(pl.G4s)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(n.NumStates()))
	return buf, nil
}

// OpenSection validates the sealed summary against the decoded automaton
// and placement: a disagreement means the artifact was tampered with or the
// backend's row model changed under it.
func (c camBackend) OpenSection(payload []byte, n *automata.NFA, pl *place.Placement) error {
	if len(payload) != 16 {
		return fmt.Errorf("backend %s: backend section is %d bytes, want 16", CamName, len(payload))
	}
	if v := binary.LittleEndian.Uint16(payload[0:]); v != camSectionVersion {
		return fmt.Errorf("backend %s: sealed section version %d, this build reads %d", CamName, v, camSectionVersion)
	}
	if br := binary.LittleEndian.Uint16(payload[2:]); br != camBankRows {
		return fmt.Errorf("backend %s: sealed bank geometry %d rows, this build models %d", CamName, br, camBankRows)
	}
	rows := int(binary.LittleEndian.Uint32(payload[4:]))
	banks := int(binary.LittleEndian.Uint32(payload[8:]))
	states := int(binary.LittleEndian.Uint32(payload[12:]))
	if got := totalRows(n); got != rows {
		return fmt.Errorf("backend %s: sealed %d rows, automaton implies %d", CamName, rows, got)
	}
	if pl == nil || len(pl.G4s) != banks {
		return fmt.Errorf("backend %s: sealed %d banks, placement has %d groups", CamName, banks, len(pl.G4s))
	}
	if states != n.NumStates() {
		return fmt.Errorf("backend %s: sealed %d states, automaton has %d", CamName, states, n.NumStates())
	}
	return nil
}
