// Package backend abstracts the compile pipeline's tail behind a pluggable
// target interface. The V-TeSS front of the pipeline (squash, stride,
// minimize) is target-agnostic: it produces a homogeneous vector-symbol
// automaton at a (bits, stride-dims) geometry. Everything after that point
// is target-specific — which geometries are legal, whether Espresso capsule
// refinement must run, how states map onto match arrays, what the hardware
// costs (capacity, throughput, area, energy), and what extra payload the
// sealed artifact carries.
//
// Two targets are registered:
//
//   - "impala" (the default): the paper's 4-bit capsule design plus its
//     baked-in Cache-Automaton 8-bit comparison geometry. Placement is the
//     G4 genetic search of internal/place; the model is the Table 3/5
//     subarray parameterization of internal/arch. It seals no extra artifact
//     payload, so default-backend artifacts are byte-identical with the
//     pre-backend format.
//
//   - "cam": a CAMA-style content-addressable-memory target (PAPERS.md:
//     "CAMA: Energy and Memory Efficient Automata Processing in
//     Content-Addressable Memories"; Kong et al.'s software-hardware
//     codesign follow-up). States are dense TCAM rows — one row per match
//     rect — searched associatively, so there is no capsule-legality
//     constraint and the refinement stage is skipped entirely. Capacity is
//     counted in rows, not states, and the energy/area tables model ternary
//     match-line arrays instead of 6T column reads.
//
// The registry is the single authority for geometry validation: core.Config
// Validate, impalac and the facade all resolve their backend here and call
// ValidateGeometry, so every layer reports identical errors.
package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"impala/internal/automata"
	"impala/internal/place"
)

// Sentinel errors. All are wrapped with context; test with errors.Is.
var (
	// ErrUnknown marks a backend name not present in the registry.
	ErrUnknown = errors.New("backend: unknown backend")
	// ErrDuplicate marks a Register call colliding with a taken name.
	ErrDuplicate = errors.New("backend: duplicate backend name")
	// ErrMismatch marks an artifact whose sealed backend differs from the
	// one the loader expects (e.g. a CAM artifact fed to the Impala facade).
	ErrMismatch = errors.New("backend: artifact targets a different backend")
)

// DefaultName is the backend assumed when no name is given — the Impala
// capsule target the repository reproduces.
const DefaultName = "impala"

// Model is a backend's capacity/energy/area evaluation of one compiled
// automaton — the arch-style analytical numbers every target must produce
// so impala-bench can tabulate them side by side. All fields are pure
// functions of the automaton shape and the backend's parameter tables
// (deterministic, so the backendcmp regression gate compares them exactly).
type Model struct {
	// Design labels the design point like the paper's figures
	// ("Impala (16-bit)", "CAM (16-bit)").
	Design string
	// BitsPerCycle is the input bits consumed per search/cycle.
	BitsPerCycle int
	// Rows is the match-array resource the automaton occupies: states for
	// Impala's per-state capsule columns, TCAM rows (one per match rect)
	// for CAM — the unit UnitCapacity is denominated in.
	Rows int
	// UnitCapacity is rows per replication unit; Units is how many units
	// this automaton needs.
	UnitCapacity, Units int
	// FreqGHz and ThroughputGbps are the derated operating point.
	FreqGHz, ThroughputGbps float64
	// MatchMM2/RouteMM2/TotalMM2 decompose the area of the required units.
	MatchMM2, RouteMM2, TotalMM2 float64
	// ThroughputPerMM2 is the Figure 11 density metric.
	ThroughputPerMM2 float64
	// PJPerByte is the analytic match-array energy per input byte under the
	// paper's no-power-gating assumption (every occupied array is read or
	// searched every cycle). Switch/wire energy is activity-dependent and
	// excluded, so the figure is deterministic.
	PJPerByte float64
}

// Backend is one compile target behind the pipeline tail.
type Backend interface {
	// Name is the registry key and the artifact META tag.
	Name() string
	// Version is the backend's model/codec revision, sealed into the
	// backend-owned artifact section.
	Version() int
	// Description is the one-line summary shown by impalac -backend list.
	Description() string
	// DefaultGeometry returns the target's native (bits, strideDims) design
	// point, used when the caller does not pick one explicitly.
	DefaultGeometry() (bits, strideDims int)
	// ValidateGeometry reports whether the target supports compiling to the
	// (bits, strideDims) point. Its error text is the single source of
	// truth: core.Config.Validate, impalac and the facade all surface it
	// verbatim.
	ValidateGeometry(bits, strideDims int) error
	// NeedsRefine reports whether the Espresso capsule-refinement stage
	// applies. CAM rows hold arbitrary ternary patterns, so the CAM target
	// skips refinement entirely.
	NeedsRefine() bool
	// Place maps the transformed automaton onto the target's match arrays.
	Place(n *automata.NFA, opts place.Options) (*place.Placement, error)
	// Model evaluates the capacity/energy/area tables for the compiled
	// automaton.
	Model(n *automata.NFA) Model
	// SealSection encodes the backend-owned artifact section payload (nil
	// means "no section" — the default backend seals nothing so its
	// artifacts stay byte-identical with the legacy format).
	SealSection(n *automata.NFA, pl *place.Placement) ([]byte, error)
	// OpenSection validates a loaded backend section payload against the
	// decoded automaton and placement. It receives nil when the artifact
	// carried no section.
	OpenSection(payload []byte, n *automata.NFA, pl *place.Placement) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend to the registry, failing on a taken name.
func Register(b Backend) error {
	regMu.Lock()
	defer regMu.Unlock()
	name := b.Name()
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrUnknown)
	}
	if _, taken := registry[name]; taken {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register for init-time wiring; it panics on collision.
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Get resolves a backend by name; the empty string selects DefaultName.
func Get(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	MustRegister(impalaBackend{})
	MustRegister(camBackend{})
}
