package backend_test

import (
	"errors"
	"strings"
	"testing"

	"impala/internal/automata"
	"impala/internal/backend"
	"impala/internal/core"
	"impala/internal/interconnect"
	"impala/internal/place"
	"impala/internal/regexc"
)

// dupProbe is a minimal Backend used only to probe registry collisions.
type dupProbe struct{ name string }

func (d dupProbe) Name() string                    { return d.name }
func (dupProbe) Version() int                      { return 1 }
func (dupProbe) Description() string               { return "test probe" }
func (dupProbe) DefaultGeometry() (int, int)       { return 8, 1 }
func (dupProbe) ValidateGeometry(_, _ int) error   { return nil }
func (dupProbe) NeedsRefine() bool                 { return false }
func (dupProbe) Model(*automata.NFA) backend.Model { return backend.Model{} }
func (dupProbe) Place(n *automata.NFA, opts place.Options) (*place.Placement, error) {
	return nil, nil
}
func (dupProbe) SealSection(*automata.NFA, *place.Placement) ([]byte, error) { return nil, nil }
func (dupProbe) OpenSection([]byte, *automata.NFA, *place.Placement) error   { return nil }

func TestRegistry(t *testing.T) {
	names := backend.Names()
	if len(names) < 2 {
		t.Fatalf("registry has %v, want at least impala and cam", names)
	}
	for _, name := range []string{"", backend.DefaultName, backend.CamName} {
		bk, err := backend.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = backend.DefaultName
		}
		if bk.Name() != want {
			t.Fatalf("Get(%q).Name() = %q", name, bk.Name())
		}
	}

	if _, err := backend.Get("no-such-target"); !errors.Is(err, backend.ErrUnknown) {
		t.Fatalf("unknown name: got %v, want ErrUnknown", err)
	}
	if err := backend.Register(dupProbe{name: backend.DefaultName}); !errors.Is(err, backend.ErrDuplicate) {
		t.Fatalf("duplicate register: got %v, want ErrDuplicate", err)
	}
	if err := backend.Register(dupProbe{}); err == nil {
		t.Fatal("empty-name register accepted")
	}
}

func TestValidateGeometry(t *testing.T) {
	cases := []struct {
		backend      string
		bits, stride int
		ok           bool
	}{
		{backend.DefaultName, 2, 4, true},
		{backend.DefaultName, 2, 8, true},
		{backend.DefaultName, 2, 2, false},
		{backend.DefaultName, 4, 1, true},
		{backend.DefaultName, 4, 2, true},
		{backend.DefaultName, 4, 4, true},
		{backend.DefaultName, 4, 8, true},
		{backend.DefaultName, 4, 3, false},
		{backend.DefaultName, 8, 1, true},
		{backend.DefaultName, 8, 2, true},
		{backend.DefaultName, 8, 4, false},
		{backend.DefaultName, 16, 1, false},
		{backend.CamName, 8, 1, true},
		{backend.CamName, 8, 2, true},
		{backend.CamName, 8, 4, false},
		{backend.CamName, 4, 4, false},
	}
	for _, c := range cases {
		bk, err := backend.Get(c.backend)
		if err != nil {
			t.Fatal(err)
		}
		err = bk.ValidateGeometry(c.bits, c.stride)
		if (err == nil) != c.ok {
			t.Errorf("%s ValidateGeometry(%d,%d): err=%v, want ok=%t", c.backend, c.bits, c.stride, err, c.ok)
		}
	}
}

// TestValidationUnified pins the satellite contract: core.Config.Validate
// delegates to the backend, so every layer reports the backend's error text
// verbatim.
func TestValidationUnified(t *testing.T) {
	for _, name := range []string{backend.DefaultName, backend.CamName} {
		bk, err := backend.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfgErr := core.Config{TargetBits: 4, StrideDims: 3, Backend: name}.Validate()
		bkErr := bk.ValidateGeometry(4, 3)
		if cfgErr == nil || bkErr == nil {
			t.Fatalf("%s: expected both layers to reject (4,3): core=%v backend=%v", name, cfgErr, bkErr)
		}
		if cfgErr.Error() != bkErr.Error() {
			t.Fatalf("%s: core reports %q, backend reports %q", name, cfgErr, bkErr)
		}
	}
	if err := (core.Config{TargetBits: 4, StrideDims: 4, Backend: "no-such"}).Validate(); !errors.Is(err, backend.ErrUnknown) {
		t.Fatalf("unknown backend in config: got %v, want ErrUnknown", err)
	}
}

// compileCam builds a CAM-target automaton through the real pipeline.
func compileCam(t *testing.T) *automata.NFA {
	t.Helper()
	rules := []regexc.Rule{
		{Pattern: "GET /index", Code: 0},
		{Pattern: "POST /login", Code: 1},
		{Pattern: "User-Agent", Code: 2},
	}
	n8, err := regexc.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(n8, core.Config{TargetBits: 8, StrideDims: 2, Backend: backend.CamName})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if strings.Contains(st.Name, "refine") {
			t.Fatalf("cam compile ran refinement stage %q", st.Name)
		}
	}
	return res.NFA
}

func TestCamPlaceCoversAllStates(t *testing.T) {
	bk, _ := backend.Get(backend.CamName)
	n := compileCam(t)
	pl, err := bk.Place(n, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Valid() {
		t.Fatalf("cam placement reports %d uncovered transitions", pl.TotalUncovered)
	}
	seen := map[automata.StateID]bool{}
	for gi, g := range pl.G4s {
		if len(g.Slots) != interconnect.G4Size {
			t.Fatalf("bank %d has %d slots, want %d", gi, len(g.Slots), interconnect.G4Size)
		}
		for _, id := range g.Slots {
			if id < 0 {
				continue
			}
			if seen[id] {
				t.Fatalf("state %d placed twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != n.NumStates() {
		t.Fatalf("placement covers %d of %d states", len(seen), n.NumStates())
	}

	// Deterministic: a second run is identical.
	pl2, err := bk.Place(n, place.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl2.G4s) != len(pl.G4s) {
		t.Fatalf("cam placement not deterministic: %d vs %d banks", len(pl2.G4s), len(pl.G4s))
	}
	for gi := range pl.G4s {
		for si := range pl.G4s[gi].Slots {
			if pl.G4s[gi].Slots[si] != pl2.G4s[gi].Slots[si] {
				t.Fatalf("bank %d slot %d differs across runs", gi, si)
			}
		}
	}
}

func TestCamModelCountsRows(t *testing.T) {
	bk, _ := backend.Get(backend.CamName)
	n := compileCam(t)
	md := bk.Model(n)
	if md.Rows < n.NumStates() {
		t.Fatalf("cam rows %d < states %d (one row per rect, at least one per state)", md.Rows, n.NumStates())
	}
	wantRows := 0
	for i := range n.States {
		r := len(n.States[i].Match)
		if r == 0 {
			r = 1
		}
		wantRows += r
	}
	if md.Rows != wantRows {
		t.Fatalf("cam rows %d, want %d", md.Rows, wantRows)
	}
	if md.Units < 1 || md.TotalMM2 <= 0 || md.PJPerByte <= 0 || md.ThroughputGbps <= 0 {
		t.Fatalf("degenerate cam model: %+v", md)
	}
	if md.BitsPerCycle != 16 {
		t.Fatalf("cam (8,2) bits/cycle = %d, want 16", md.BitsPerCycle)
	}
}

func TestCamSealOpenRoundTrip(t *testing.T) {
	bk, _ := backend.Get(backend.CamName)
	n := compileCam(t)
	pl, err := bk.Place(n, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := bk.SealSection(n, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Fatal("cam seals an empty section")
	}
	if err := bk.OpenSection(payload, n, pl); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	// Tampered row count, truncated payload, and absent section all fail.
	bad := append([]byte(nil), payload...)
	bad[4] ^= 0xFF
	if err := bk.OpenSection(bad, n, pl); err == nil {
		t.Fatal("tampered row count accepted")
	}
	if err := bk.OpenSection(payload[:8], n, pl); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := bk.OpenSection(nil, n, pl); err == nil {
		t.Fatal("missing payload accepted")
	}
}

// TestImpalaModelMatchesArch pins the refactored default target: Place is
// the G4 genetic search and the model is the Table 3/5 parameterization,
// reached through the interface instead of direct arch calls.
func TestImpalaModelMatchesArch(t *testing.T) {
	bk, err := backend.Get(backend.DefaultName)
	if err != nil {
		t.Fatal(err)
	}
	if v := bk.Version(); v < 1 {
		t.Fatalf("impala version %d", v)
	}
	if bk.Description() == "" {
		t.Fatal("impala has no description")
	}
	if bits, dims := bk.DefaultGeometry(); bits != 4 || dims != 4 {
		t.Fatalf("impala default geometry (%d,%d), want (4,4)", bits, dims)
	}
	cam, _ := backend.Get(backend.CamName)
	if bits, dims := cam.DefaultGeometry(); bits != 8 || dims != 2 {
		t.Fatalf("cam default geometry (%d,%d), want (8,2)", bits, dims)
	}
	if cam.Version() < 1 || cam.Description() == "" {
		t.Fatal("cam version/description missing")
	}

	rules := []regexc.Rule{{Pattern: "GET /index", Code: 0}, {Pattern: "User-Agent", Code: 1}}
	n8, err := regexc.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(n8, core.Config{TargetBits: 4, StrideDims: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := bk.Place(res.NFA, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Valid() {
		t.Fatalf("impala placement uncovered: %d", pl.TotalUncovered)
	}
	md := bk.Model(res.NFA)
	if md.Rows != res.NFA.NumStates() {
		t.Fatalf("impala rows %d != states %d (capsule columns are one per state)", md.Rows, res.NFA.NumStates())
	}
	if md.BitsPerCycle != 16 || md.FreqGHz <= 0 || md.TotalMM2 <= 0 || md.PJPerByte <= 0 || md.Units < 1 {
		t.Fatalf("degenerate impala model: %+v", md)
	}
	// The 8-bit geometry is the baked-in Cache-Automaton comparison point.
	res8, err := core.Compile(n8, core.Config{TargetBits: 8, StrideDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ca := bk.Model(res8.NFA); ca.Design == md.Design {
		t.Fatalf("8-bit geometry should map to the CA design point, got %q twice", ca.Design)
	}

	// OpenSection accepts exactly the nothing SealSection seals.
	if err := bk.OpenSection(nil, res.NFA, pl); err != nil {
		t.Fatalf("impala open of empty section: %v", err)
	}
	if err := bk.OpenSection([]byte{1}, res.NFA, pl); err == nil {
		t.Fatal("impala accepted a non-empty backend section")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister of a duplicate did not panic")
		}
	}()
	backend.MustRegister(dupProbe{name: backend.DefaultName})
}

func TestImpalaSealsNothing(t *testing.T) {
	bk, _ := backend.Get(backend.DefaultName)
	payload, err := bk.SealSection(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		t.Fatalf("impala seals %d bytes, want none", len(payload))
	}
	if !bk.NeedsRefine() {
		t.Fatal("impala must require capsule refinement")
	}
	cam, _ := backend.Get(backend.CamName)
	if cam.NeedsRefine() {
		t.Fatal("cam must skip capsule refinement")
	}
}
