package backend

import (
	"fmt"

	"impala/internal/arch"
	"impala/internal/automata"
	"impala/internal/interconnect"
	"impala/internal/place"
)

// impalaBackend is the default target: the paper's 4-bit capsule design
// (16-row match subarrays, G4 switch fabric, Espresso capsule refinement)
// plus the Cache-Automaton 8-bit comparison geometry and the 2-bit
// squash-width ablation it has always carried. It is the pipeline tail the
// refactor pulled out of core/place/arch: geometry legality is the old
// core.Config.Validate switch, placement is the G4 genetic search, and the
// model is the Table 3/5 subarray parameterization.
type impalaBackend struct{}

func (impalaBackend) Name() string { return DefaultName }
func (impalaBackend) Version() int { return 1 }
func (impalaBackend) Description() string {
	return "Impala 4-bit capsule subarrays + G4 fabric (default; 8-bit geometry = Cache-Automaton comparison point)"
}

func (impalaBackend) DefaultGeometry() (int, int) { return 4, 4 }

// ValidateGeometry is the former core.Config.Validate switch, verbatim: the
// supported (bits, stride-dims) pairs of the capsule design and its
// comparison/ablation geometries.
func (impalaBackend) ValidateGeometry(bits, strideDims int) error {
	switch bits {
	case 2:
		switch strideDims {
		case 4, 8:
		default:
			return fmt.Errorf("backend %s: 2-bit target supports stride dims 4/8, got %d", DefaultName, strideDims)
		}
	case 4:
		switch strideDims {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("backend %s: 4-bit target supports stride dims 1/2/4/8, got %d", DefaultName, strideDims)
		}
	case 8:
		switch strideDims {
		case 1, 2:
		default:
			return fmt.Errorf("backend %s: 8-bit target supports stride dims 1/2, got %d", DefaultName, strideDims)
		}
	default:
		return fmt.Errorf("backend %s: unsupported target bits %d", DefaultName, bits)
	}
	return nil
}

// NeedsRefine: capsule columns can only match conjunctions of per-dimension
// sets, so Espresso refinement to capsule-legal form is mandatory.
func (impalaBackend) NeedsRefine() bool { return true }

// Place runs the G4/G16 genetic placement search of internal/place.
func (impalaBackend) Place(n *automata.NFA, opts place.Options) (*place.Placement, error) {
	return place.Place(n, opts)
}

// design maps the automaton geometry to the arch design point: 8-bit
// geometries are the baked-in Cache-Automaton comparison mode.
func (impalaBackend) design(n *automata.NFA) arch.Design {
	if n.Bits == 8 {
		return arch.Design{Arch: arch.CacheAutomaton, Bits: n.Bits, Stride: n.Stride}
	}
	return arch.Design{Arch: arch.Impala, Bits: n.Bits, Stride: n.Stride}
}

// Model wraps the internal/arch capacity/area/energy tables.
func (b impalaBackend) Model(n *automata.NFA) Model {
	d := b.design(n)
	states := n.NumStates()
	unit := arch.StandardUnit(d)
	area := arch.AreaBreakdown(d, states)

	// Analytic match-array energy: every occupied state-matching subarray
	// is read every cycle (the arrays cannot be power-gated cycle-by-cycle
	// — see internal/arch's energy model); one block of 256 states needs
	// Stride subarrays.
	blocks, _ := arch.OccupancyFor(states)
	perArrayMW := arch.ImpalaMatchSubarray.ReadPowMW
	if d.Arch == arch.CacheAutomaton {
		perArrayMW = arch.CAMatchSubarray.ReadPowMW
	}
	cycleNS := 1.0 / d.FreqGHz()
	pjPerCycle := float64(blocks) * float64(d.Stride) * perArrayMW * cycleNS
	bytesPerCycle := float64(d.BitsPerCycle()) / 8.0

	return Model{
		Design:           d.String(),
		BitsPerCycle:     d.BitsPerCycle(),
		Rows:             states,
		UnitCapacity:     unit.Capacity,
		Units:            unit.UnitsFor(states),
		FreqGHz:          d.FreqGHz(),
		ThroughputGbps:   d.ThroughputGbps(),
		MatchMM2:         area.StateMatchMM2,
		RouteMM2:         area.InterconnectMM2,
		TotalMM2:         area.TotalMM2(),
		ThroughputPerMM2: arch.ThroughputPerArea(d, states),
		PJPerByte:        pjPerCycle / bytesPerCycle,
	}
}

// SealSection seals nothing: the default backend's artifacts carry no
// backend-owned section, keeping them byte-identical with the pre-backend
// container format (and loadable by older readers of the layout).
func (impalaBackend) SealSection(*automata.NFA, *place.Placement) ([]byte, error) {
	return nil, nil
}

// OpenSection accepts only the absence it seals.
func (impalaBackend) OpenSection(payload []byte, n *automata.NFA, pl *place.Placement) error {
	if len(payload) != 0 {
		return fmt.Errorf("backend %s: unexpected %d-byte backend section", DefaultName, len(payload))
	}
	// The placement must fit the G4 fabric this backend places onto.
	for gi, g := range pl.G4s {
		if len(g.Slots) != interconnect.G4Size && len(g.Slots) != interconnect.G16Size {
			return fmt.Errorf("backend %s: group %d has %d slots, want G4/G16", DefaultName, gi, len(g.Slots))
		}
	}
	return nil
}
