package impala

import (
	"bytes"
	"errors"
	"testing"

	"impala/internal/artifact"
	"impala/internal/backend"
	"impala/internal/core"
	"impala/internal/place"
	"impala/internal/regexc"
)

// TestFacadeRejectsForeignBackend pins the cross-backend load contract: an
// artifact sealed for the CAM target must be refused by the capsule engine
// (and therefore by impala-serve tenants, which load through the same
// facade) with the sentinel mismatch error, not a garbled machine.
func TestFacadeRejectsForeignBackend(t *testing.T) {
	rules := []regexc.Rule{
		{Pattern: "GET /index", Code: 0},
		{Pattern: "User-Agent", Code: 1},
	}
	n8, err := regexc.Compile(rules)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := backend.Get(backend.CamName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(n8, core.Config{TargetBits: 8, StrideDims: 2, Backend: backend.CamName})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := bk.Place(res.NFA, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := artifact.New(res.NFA, pl, n8, artifact.Meta{Seed: 1, CreatedUnix: 1700000000}, nil)
	payload, err := bk.SealSection(res.NFA, pl)
	if err != nil {
		t.Fatal(err)
	}
	a.SetBackend(bk.Name(), payload)

	if _, err := MachineFromArtifact(a); !errors.Is(err, backend.ErrMismatch) {
		t.Fatalf("cam artifact accepted by the capsule engine: %v", err)
	}

	// The same rejection must hold through the serialized path.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMachine(bytes.NewReader(buf.Bytes())); !errors.Is(err, backend.ErrMismatch) {
		t.Fatalf("serialized cam artifact accepted: %v", err)
	}
}
