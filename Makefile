# Impala reproduction — common targets.

GO ?= go

.PHONY: all check build vet test test-short test-race bench cover examples experiments clean

all: check

# check is the default CI gate: compile, static analysis, full tests, and a
# race-detector pass over the concurrent packages: the simulator (compiled
# form shared across RunParallel workers) and the parallel compile pipeline
# (worker pools sharing the Espresso cover cache, GA fitness evaluation).
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./internal/sim/... ./internal/core/... ./internal/espresso/... ./internal/place/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...
	$(GO) run ./cmd/impala-bench -exp compilespeed -json BENCH_compile.json

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nids
	$(GO) run ./examples/motif
	$(GO) run ./examples/entityresolution
	$(GO) run ./examples/toolchain

# Regenerate every paper table/figure (writes CSVs under out/).
experiments:
	$(GO) run ./cmd/impala-bench -exp all -scale 0.02 -dump out/

clean:
	rm -rf out/
