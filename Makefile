# Impala reproduction — common targets.

GO ?= go

.PHONY: all build vet test test-short bench cover examples experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nids
	$(GO) run ./examples/motif
	$(GO) run ./examples/entityresolution
	$(GO) run ./examples/toolchain

# Regenerate every paper table/figure (writes CSVs under out/).
experiments:
	$(GO) run ./cmd/impala-bench -exp all -scale 0.02 -dump out/

clean:
	rm -rf out/
