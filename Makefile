# Impala reproduction — common targets.

GO ?= go

# Coverage ratchet: `make cover-check` fails below this total. The tree sits
# at ~82% — raise the floor as coverage grows, never lower it.
COVER_MIN ?= 80.0

.PHONY: all check build vet fmt-check test test-short test-race bench bench-check cover cover-check examples experiments artifact serve smoke-serve smoke-cluster smoke-align clean

all: check

# check is the default CI gate: formatting, compile, static analysis, full
# tests, and a race-detector pass over the concurrent packages: the
# simulator (compiled form shared across RunParallel workers), the parallel
# compile pipeline (worker pools sharing the Espresso cover cache, GA
# fitness evaluation), the capsule-level machine (instrumented StepCycle),
# the observability layer itself (lock-free counters/histograms), and the
# serving stack (multi-tenant registry hot-swaps under concurrent streams,
# bounded match pool, artifact codec), the tiered engine (pooled cores
# shared across Run callers, parallel simultaneous-DFA build and scan),
# and the sharded engine (concurrent shard construction and fan-out scan),
# and the topology placer (deterministic placement under GA worker pools),
# and the scored engine (pooled scoring engines shared across Run callers).
check: fmt-check build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./internal/sim/... ./internal/core/... ./internal/espresso/... ./internal/place/... ./internal/arch/... ./internal/obs/... ./internal/par/... ./internal/server/... ./internal/artifact/... ./internal/dfa/... ./internal/backend/... ./internal/shard/... ./internal/topo/... ./internal/score/... ./internal/workload/...

# tierspeed runs at 256 KiB inputs and shardspeed at 1 MiB so the big
# benchmarks' engine walls clear the MinWallMS noise gate and the speedup
# floors actually arm; the committed baselines use the same sizes.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...
	$(GO) run ./cmd/impala-bench -exp compilespeed -json BENCH_compile.json
	$(GO) run ./cmd/impala-bench -exp tierspeed -input-kb 256 -json BENCH_sim.json
	$(GO) run ./cmd/impala-bench -exp backendcmp -json BENCH_backend.json
	$(GO) run ./cmd/impala-bench -exp servespeed -json BENCH_serve.json
	$(GO) run ./cmd/impala-bench -exp shardspeed -input-kb 1024 -json BENCH_shard.json
	$(GO) run ./cmd/impala-bench -exp clustersweep -json BENCH_cluster.json
	$(GO) run ./cmd/impala-bench -exp scorespeed -input-kb 1024 -json BENCH_score.json

# bench-check is the perf-regression smoke gate: rerun the compilespeed
# sweep and compare cache hit rate, cache speedup (best-of-sweep, only on
# benchmarks big enough to time), and compiled-automaton shape against the
# committed baseline; then rerun the tierspeed sweep and compare tier-plan
# shape (exact) and tiered-over-compiled speedup against its baseline; then
# rerun the cross-backend comparison and require every deterministic column
# (shape, placement grouping, capacity/energy/area model) to match exactly;
# then rerun the servespeed sweep (served request/match counts exact,
# concurrency speedups within tolerance) and the shardspeed sweep
# (partition shape exact, per-K speedups within tolerance, and — on
# parallel hardware — at least two families doubling throughput at 8
# shards) against their baselines. The shardspeed ratio floor runs at a
# wider 50% tolerance: serial K-to-K ratios swing ~30% under shared-host
# load, and the tolerance-independent 2x headline gate carries the claim.
# Finally the clustersweep gate: topology placement, per-domain state loads,
# cut cost, and served match/byte counts compared exactly — fully hermetic,
# no wall-clock column, so it holds on any host.
bench-check:
	$(GO) run ./cmd/impala-bench -exp compilespeed -check BENCH_compile.json
	$(GO) run ./cmd/impala-bench -exp tierspeed -input-kb 256 -check BENCH_sim.json
	$(GO) run ./cmd/impala-bench -exp backendcmp -check BENCH_backend.json
	$(GO) run ./cmd/impala-bench -exp servespeed -check BENCH_serve.json
	$(GO) run ./cmd/impala-bench -exp shardspeed -input-kb 1024 -tolerance 0.5 -check BENCH_shard.json
	$(GO) run ./cmd/impala-bench -exp clustersweep -check BENCH_cluster.json
	$(GO) run ./cmd/impala-bench -exp scorespeed -input-kb 1024 -tolerance 0.5 -check BENCH_score.json

cover:
	$(GO) test -cover ./...

# cover-check enforces the ratcheted coverage floor and leaves coverage.out
# behind for upload/inspection.
cover-check:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% ratchet"; exit 1; }

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nids
	$(GO) run ./examples/motif
	$(GO) run ./examples/entityresolution
	$(GO) run ./examples/toolchain
	$(GO) run ./examples/alignment

# Regenerate every paper table/figure (writes CSVs under out/).
experiments:
	$(GO) run ./cmd/impala-bench -exp all -scale 0.02 -dump out/

# Compile the demo ruleset into a sealed serving artifact.
artifact:
	@mkdir -p out
	$(GO) run ./cmd/impalac -patterns 'GET /,POST /,User-Agent' -o out/demo.impala
	$(GO) run ./cmd/impala-sim -load out/demo.impala -v

# Build the demo artifact and serve it (Ctrl-C drains and exits).
serve: artifact
	$(GO) run ./cmd/impala-serve -load demo=out/demo.impala -listen :8600 -ops :9090

# End-to-end serving smoke: compile → save → serve → curl match/stream →
# SIGTERM drain (the CI job).
smoke-serve:
	./scripts/smoke_serve.sh

# End-to-end cluster smoke: compile with a topology → 2 domain workers + a
# frontend → fan-out match/stream → kill a worker → explicit partial-result
# degradation → SIGTERM drain (the CI job).
smoke-cluster:
	./scripts/smoke_cluster.sh

# Scored-execution smoke: the alignment demo's known read scores through the
# one-shot and streaming paths, plus the impalac -score / impala-sim scored
# artifact round trip (the CI job).
smoke-align:
	./scripts/smoke_align.sh

clean:
	rm -rf out/ coverage.out
