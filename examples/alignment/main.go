// alignment is the scored-execution demo: DNA reads ranked by alignment
// quality against a reference 12-mer. An edit-distance mesh (distance <= 2)
// carries per-transition alignment costs — +1 per matched base, -1 per
// substitution, -2 per gap — and the scored engine accumulates the best
// max-plus score over every alignment path, reporting only reads whose
// score clears the threshold. With threshold 9, perfect (12) and
// single-edit reads (9-10) rank; two-edit reads (<= 8) are filtered out.
//
// The same machine then scores a chunked stream, showing the scored
// session path emitting final (window-merged) scores incrementally.
package main

import (
	"fmt"
	"log"
	"sort"

	"impala"
	"impala/internal/workload"
)

func main() {
	reference := []byte("ACGTTGCAACGT")
	const editDistance = 2
	const threshold = 9 // (L-1) matches + one gap: the weakest single-edit read

	nfa, weights, err := workload.ScoredLevenshtein(
		[][]byte{reference}, editDistance, workload.DefaultAlignCosts, threshold)
	if err != nil {
		log.Fatal(err)
	}
	cfg := impala.DefaultConfig()
	cfg.Score = weights
	m, err := impala.CompileAutomaton(nfa, cfg)
	if err != nil {
		log.Fatal(err)
	}
	si := m.ScoreInfo()
	fmt.Printf("alignment engine: reference %s, edit distance <= %d, threshold %g\n",
		reference, editDistance, si.Threshold)
	fmt.Printf("  %d states, %d weighted edges, %d on the scalar scoring fallback\n\n",
		m.Model().States, si.Edges, si.ScalarStates)

	// Sequenced reads at known edit distances from the reference.
	reads := []struct {
		name string
		seq  []byte
	}{
		{"exact", []byte("ACGTTGCAACGT")},     // the reference itself
		{"one-sub", []byte("ACGTTGCAACGA")},   // last base substituted
		{"one-del", []byte("ACGTGCAACGT")},    // base 5 deleted
		{"two-sub", []byte("AGGTTGCATCGT")},   // two substitutions
		{"unrelated", []byte("TTTTAAAATTTT")}, // no alignment at all
	}

	type ranked struct {
		name  string
		seq   []byte
		score float64
		hit   bool
	}
	var board []ranked
	for _, r := range reads {
		matches, err := m.MatchScored(r.seq)
		if err != nil {
			log.Fatal(err)
		}
		best := ranked{name: r.name, seq: r.seq}
		for _, sm := range matches {
			if !best.hit || sm.Score > best.score {
				best.score, best.hit = sm.Score, true
			}
		}
		board = append(board, best)
	}
	sort.SliceStable(board, func(i, j int) bool {
		if board[i].hit != board[j].hit {
			return board[i].hit
		}
		return board[i].score > board[j].score
	})
	rank := 0
	for _, b := range board {
		if b.hit {
			rank++
			fmt.Printf("rank %d: %-9s %-12s score %g\n", rank, b.name, b.seq, b.score)
		} else {
			fmt.Printf("filtered: %-9s %-12s below threshold\n", b.name, b.seq)
		}
	}

	// The same machine scores a chunked read stream: spacers of T's between
	// reads, scores emitted as each report's merge window closes.
	fmt.Println()
	stream := []byte("TTTTTTTT" + "ACGTTGCAACGT" + "TTTTTTTT" + "ACGTTGCAACGA" + "TTTTTTTT")
	st, err := m.NewScoredStream(func(sm impala.ScoredMatch) {
		fmt.Printf("stream: read ending at byte %d, score %g\n", sm.End, sm.Score)
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < len(stream); i += 7 {
		end := i + 7
		if end > len(stream) {
			end = len(stream)
		}
		st.Feed(stream[i:end])
	}
	st.Flush()
}
