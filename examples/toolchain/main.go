// toolchain walks the complete offline/online flow the paper's system
// integration section describes: author an automaton, serialize it as ANML
// (the AP/ANMLZoo interchange format), compile it through V-TeSS, persist
// the device bitstream, reload the bitstream as a fresh machine (the
// memory-mapped configuration step), and scan a stream — once sequentially
// at the capsule level and once with parallel input splitting.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"impala"
	"impala/internal/anml"
	"impala/internal/arch"
	"impala/internal/regexc"
)

func main() {
	// 1. Author patterns and express them as an ANML document.
	nfa := regexc.MustCompile([]regexc.Rule{
		{Pattern: "ERROR", Code: 0},
		{Pattern: `WARN(ING)?`, Code: 1},
		{Pattern: `timeout after \d+ms`, Code: 2},
	})
	var doc bytes.Buffer
	if err := anml.Write(&doc, nfa, "log-rules"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ANML document: %d bytes, %d STEs\n", doc.Len(), nfa.NumStates())

	// 2. Compile the ANML through the full pipeline (as a host toolchain
	// loading third-party rule files would).
	m, err := impala.CompileANML(&doc, impala.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	md := m.Model()
	fmt.Printf("compiled: %d -> %d STEs, %d G4(s), bitstream %d bytes\n\n",
		md.OriginalStates, md.States, md.G4s, md.BitstreamBytes)

	// 3. Build a log stream with planted events.
	var stream strings.Builder
	for i := 0; i < 200; i++ {
		switch i % 9 {
		case 3:
			fmt.Fprintf(&stream, "ERROR line %d\n", i)
		case 5:
			fmt.Fprintf(&stream, "WARNING: disk %d\n", i)
		case 7:
			fmt.Fprintf(&stream, "timeout after %dms\n", i*3)
		default:
			fmt.Fprintf(&stream, "INFO ok %d\n", i)
		}
	}
	input := []byte(stream.String())

	// 4. Sequential capsule-level scan.
	seq := m.Run(input)
	counts := map[int]int{}
	for _, mt := range seq {
		counts[mt.Pattern]++
	}
	fmt.Printf("sequential scan: %d bytes, %d matches (ERROR=%d WARN=%d timeout=%d)\n",
		len(input), len(seq), counts[0], counts[1], counts[2])

	// 5. Parallel scan: split the stream across 4 replicas (the
	// parallel-automata-processor technique) — identical results. The
	// `\d+` loop makes match spans unbounded in principle, so we provide
	// an explicit 64-byte segment overlap (far beyond any real log line).
	par, err := m.RunParallel(input, 4, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel scan (4 workers): %d matches, identical = %v\n",
		len(par), matchesEqual(seq, par))

	// 6. Section 6 output-buffer budget check for this workload.
	sys := arch.DefaultSystem(arch.Design{Arch: arch.Impala, Bits: 4, Stride: 4})
	rate := float64(len(seq)) / (float64(len(input)) / 2) // reports per 16-bit cycle
	rep := sys.Analyze(rate)
	fmt.Printf("reporting rate %.4f reports/cycle vs OB budget %.4f -> overflow: %v\n",
		rate, rep.MaxReportsPerCycle, rep.OBOverflow)
}

func matchesEqual(a, b []impala.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
