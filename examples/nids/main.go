// nids is a network-intrusion-detection example: a Snort-like rule set is
// compiled onto Impala, a synthetic packet stream (with injected attacks)
// is scanned at 16 bits/cycle, and per-rule alert statistics are printed —
// the application class the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"impala"
)

type rule struct {
	pattern string
	name    string
}

func main() {
	rules := []rule{
		{`GET /etc/passwd`, "path traversal: /etc/passwd read"},
		{`\.\./\.\./`, "path traversal: dot-dot-slash"},
		{`cmd\.exe`, "windows shell invocation"},
		{`/bin/sh`, "unix shell invocation"},
		{`SELECT .+ FROM`, "SQL injection probe"},
		{`<script>`, "reflected XSS tag"},
		{`\x90\x90\x90\x90\x90\x90\x90\x90`, "NOP sled"},
		{`Authorization: Basic [A-Za-z0-9+/=]+`, "basic-auth credentials in clear"},
		{`User-Agent: (sqlmap|nikto|nmap)`, "scanner user agent"},
	}
	patterns := make([]string, len(rules))
	for i, r := range rules {
		patterns[i] = r.pattern
	}

	m, err := impala.CompileRegex(patterns, impala.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	md := m.Model()
	fmt.Printf("NIDS engine: %d rules, %d STEs, %.3f mm², line rate %.0f Gbps\n\n",
		len(rules), md.States, md.AreaMM2, md.ThroughputGbps)

	// Synthesize a packet stream: benign HTTP traffic with attacks mixed in.
	r := rand.New(rand.NewSource(42))
	var stream strings.Builder
	attacks := []string{
		"GET /etc/passwd HTTP/1.0\r\n",
		"GET /a/../../secret HTTP/1.1\r\n",
		"POST /q?x=SELECT name FROM users HTTP/1.1\r\n",
		"User-Agent: sqlmap\r\n",
		"payload " + strings.Repeat("\x90", 8) + " end\r\n",
	}
	for i := 0; i < 200; i++ {
		if r.Intn(10) == 0 {
			stream.WriteString(attacks[r.Intn(len(attacks))])
		} else {
			fmt.Fprintf(&stream, "GET /page%d HTTP/1.1\r\nHost: example.com\r\n\r\n", r.Intn(1000))
		}
	}

	input := []byte(stream.String())
	alerts := map[int]int{}
	for _, match := range m.Run(input) {
		alerts[match.Pattern]++
	}
	fmt.Printf("scanned %d bytes (%.1f µs at line rate)\n\n",
		len(input), float64(len(input)*8)/(md.ThroughputGbps*1000))
	for i, rl := range rules {
		if alerts[i] > 0 {
			fmt.Printf("ALERT x%-4d %s\n", alerts[i], rl.name)
		}
	}
}
