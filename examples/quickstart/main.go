// Quickstart: compile a handful of regexes onto the Impala 4-stride design
// point, scan a byte stream at the capsule level, and print the hardware
// model the configuration implies.
package main

import (
	"fmt"
	"log"

	"impala"
)

func main() {
	patterns := []string{
		"GET /",              // 0: HTTP GET
		"POST /",             // 1: HTTP POST
		`User-Agent: \w+`,    // 2: UA header
		`\d+\.\d+\.\d+\.\d+`, // 3: dotted quad
	}

	// The default configuration is the paper's best design point:
	// four 4-bit symbols per cycle (16 bits/cycle at 5 GHz = 80 Gbps).
	m, err := impala.CompileRegex(patterns, impala.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("GET /index.html HTTP/1.1\r\nHost: 10.0.42.7\r\nUser-Agent: curl\r\n\r\nPOST /login HTTP/1.1\r\n")
	for _, match := range m.Run(input) {
		fmt.Printf("pattern %d (%q) matched, ending at byte %d\n",
			match.Pattern, patterns[match.Pattern], match.End)
	}

	md := m.Model()
	fmt.Printf("\ndesign point : %d bits/cycle @ %.1f GHz = %.0f Gbps\n",
		md.BitsPerCycle, md.FreqGHz, md.ThroughputGbps)
	fmt.Printf("states       : %d original -> %d after V-TeSS\n", md.OriginalStates, md.States)
	fmt.Printf("hardware     : %d G4 unit(s), %.3f mm² @14nm, %d-byte bitstream\n",
		md.G4s, md.AreaMM2, md.BitstreamBytes)
	for _, st := range md.CompileStages {
		fmt.Printf("  stage %-16s %5d states %6d transitions\n", st.Name, st.States, st.Transitions)
	}
}
