// motif is a bioinformatics example: approximate motif search over a DNA
// sequence using a Hamming-distance mesh automaton (the Hamming family of
// ANMLZoo), compiled through the full Impala pipeline and executed at the
// capsule level. It demonstrates CompileAutomaton — feeding the toolchain a
// hand-built automaton instead of regexes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"impala"
	"impala/internal/automata"
	"impala/internal/bitvec"
)

// addHammingMotif builds a distance-d mesh for the motif: state m[e][i]
// consumes motif[i] with e mismatches so far; x[e][i] consumes a mismatch.
func addHammingMotif(n *automata.NFA, motif string, d, code int) {
	L := len(motif)
	match := make([][]automata.StateID, d+1)
	miss := make([][]automata.StateID, d+1)
	for e := 0; e <= d; e++ {
		match[e] = make([]automata.StateID, L)
		miss[e] = make([]automata.StateID, L)
		for i := 0; i < L; i++ {
			kind := automata.StartNone
			if i == 0 && e == 0 {
				kind = automata.StartAllInput
			}
			match[e][i] = n.AddState(automata.State{
				Match:      automata.MatchSet{automata.Rect{bitvec.ByteOf(motif[i])}},
				Start:      kind,
				Report:     i == L-1,
				ReportCode: code,
			})
			miss[e][i] = n.AddState(automata.State{
				Match:      automata.MatchSet{automata.Rect{bitvec.ByteOf(motif[i]).Complement()}},
				Start:      kind,
				Report:     i == L-1 && e > 0,
				ReportCode: code,
			})
		}
	}
	for e := 0; e <= d; e++ {
		for i := 0; i < L-1; i++ {
			n.AddEdge(match[e][i], match[e][i+1])
			n.AddEdge(miss[e][i], match[e][i+1])
			if e < d {
				n.AddEdge(match[e][i], miss[e+1][i+1])
				n.AddEdge(miss[e][i], miss[e+1][i+1])
			}
		}
	}
}

func main() {
	motifs := []string{"ACGTACGTAC", "TTGACAGCTA", "GGGCCCTTTA"}
	const maxMismatches = 2

	nfa := automata.New(8, 1)
	for code, motif := range motifs {
		addHammingMotif(nfa, motif, maxMismatches, code)
	}

	m, err := impala.CompileAutomaton(nfa, impala.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	md := m.Model()
	fmt.Printf("motif engine: %d motifs (±%d mismatches), %d -> %d STEs, %.0f Gbps\n\n",
		len(motifs), maxMismatches, md.OriginalStates, md.States, md.ThroughputGbps)

	// Random genome with planted approximate occurrences.
	r := rand.New(rand.NewSource(7))
	const bases = "ACGT"
	var genome strings.Builder
	plant := func(motif string, mismatches int) {
		b := []byte(motif)
		for k := 0; k < mismatches; k++ {
			i := r.Intn(len(b))
			b[i] = bases[r.Intn(4)]
		}
		genome.Write(b)
	}
	for i := 0; i < 60; i++ {
		for k := 0; k < 50; k++ {
			genome.WriteByte(bases[r.Intn(4)])
		}
		if i%7 == 0 {
			plant(motifs[r.Intn(len(motifs))], r.Intn(3))
		}
	}

	hits := map[int]int{}
	for _, match := range m.Run([]byte(genome.String())) {
		hits[match.Pattern]++
	}
	for code, motif := range motifs {
		fmt.Printf("motif %s: %d approximate occurrence(s)\n", motif, hits[code])
	}
}
