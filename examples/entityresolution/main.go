// entityresolution reproduces the paper's Section 5.2.1 case-study workload
// as an application: approximate matching of database records (person
// names) against a dirty input stream, tolerating one edit per name via
// small per-name alternation automata. It prints the placement statistics
// that the case study reports: CC packing density into G4 switch units and
// whether the GA reached a zero-miss placement.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"impala"
)

func main() {
	names := []string{
		"john smith", "jane doe", "maria garcia", "wei chen", "amir khan",
		"olga petrova", "kofi mensah", "lucas silva", "emma brown", "noah jones",
	}
	// One rule per record: accept the name with any single character
	// replaced ('.') — a compact one-substitution matcher.
	var patterns []string
	for _, name := range names {
		var alts []string
		alts = append(alts, regexpQuote(name))
		for i := range name {
			if name[i] == ' ' {
				continue
			}
			alts = append(alts, regexpQuote(name[:i])+"."+regexpQuote(name[i+1:]))
		}
		patterns = append(patterns, "("+strings.Join(alts, "|")+")")
	}

	m, err := impala.CompileRegex(patterns, impala.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	md := m.Model()
	fmt.Printf("entity-resolution engine: %d records, %d -> %d STEs, %d G4 unit(s), %.3f mm²\n\n",
		len(names), md.OriginalStates, md.States, md.G4s, md.AreaMM2)

	// A dirty record stream: exact names, one-typo names, and noise.
	r := rand.New(rand.NewSource(3))
	var stream strings.Builder
	expected := 0
	for i := 0; i < 60; i++ {
		switch r.Intn(3) {
		case 0:
			stream.WriteString(names[r.Intn(len(names))])
			expected++
		case 1:
			b := []byte(names[r.Intn(len(names))])
			b[r.Intn(len(b))] = byte('a' + r.Intn(26))
			stream.Write(b)
			// Still matches unless the typo hit a space position pattern.
			expected++
		default:
			for k := 0; k < 10; k++ {
				stream.WriteByte(byte('a' + r.Intn(26)))
			}
		}
		stream.WriteString("; ")
	}

	matches := m.Run([]byte(stream.String()))
	perRecord := map[int]int{}
	for _, mt := range matches {
		perRecord[mt.Pattern]++
	}
	fmt.Printf("stream: %d bytes, ~%d planted records, %d raw match reports\n\n",
		stream.Len(), expected, len(matches))
	for i, name := range names {
		fmt.Printf("%-14s matched %d time(s)\n", name, perRecord[i])
	}
}

// regexpQuote escapes regex metacharacters in a literal.
func regexpQuote(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if strings.ContainsRune(`\.+*?()|[]{}^$`, rune(s[i])) {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
