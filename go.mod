module impala

go 1.22
