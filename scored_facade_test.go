package impala

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"

	"impala/internal/workload"
)

// scoredFixture compiles a scored Levenshtein machine at the default design
// point and returns it with an input carrying exact and mutated reads.
func scoredFixture(t *testing.T, cfg Config) (*Machine, []byte) {
	t.Helper()
	pats := [][]byte{[]byte("ACGTACGT"), []byte("TTGACCAT")}
	n, w, err := workload.ScoredLevenshtein(pats, 2, workload.DefaultAlignCosts, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Score = w
	m, err := CompileAutomaton(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	input := make([]byte, 0, 256)
	for len(input) < 200 {
		read := append([]byte(nil), pats[r.Intn(len(pats))]...)
		if r.Intn(2) == 0 {
			read[1+r.Intn(len(read)-2)] = "ACGT"[r.Intn(4)]
		}
		input = append(input, read...)
		for j := r.Intn(6); j > 0; j-- {
			input = append(input, "ACGT"[r.Intn(4)])
		}
	}
	return m, input
}

func sortScored(ms []ScoredMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

// TestMatchScored: the scored one-shot reports only threshold-clearing
// hits, every hit is also a binary match, and the summary accessors
// describe the sealed table.
func TestMatchScored(t *testing.T) {
	m, input := scoredFixture(t, DefaultConfig())
	scored, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) == 0 {
		t.Fatal("no scored matches — fixture input is inert")
	}
	binary := make(map[Match]bool)
	for _, mt := range m.Match(input) {
		binary[mt] = true
	}
	if len(scored) >= len(binary) {
		t.Fatalf("threshold suppressed nothing: %d scored vs %d binary", len(scored), len(binary))
	}
	info := m.ScoreInfo()
	if info == nil || info.Threshold != 5 || info.Edges == 0 {
		t.Fatalf("score info %+v", info)
	}
	seen := make(map[Match]bool)
	for _, s := range scored {
		if s.Score < info.Threshold {
			t.Fatalf("match %+v below threshold", s)
		}
		if !binary[s.Match] {
			t.Fatalf("scored match %+v not in binary output", s)
		}
		if seen[s.Match] {
			t.Fatalf("duplicate scored match %+v", s)
		}
		seen[s.Match] = true
	}
}

// TestScoredStreamMatchesOneShot: chunked scored streaming emits exactly
// the one-shot match set with identical max-merged scores, at every chunk
// size including byte-at-a-time.
func TestScoredStreamMatchesOneShot(t *testing.T) {
	m, input := scoredFixture(t, DefaultConfig())
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	sortScored(want)
	for _, chunk := range []int{1, 3, 7, 64, len(input)} {
		var got []ScoredMatch
		s, err := m.NewScoredStream(func(sm ScoredMatch) { got = append(got, sm) })
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(input); off += chunk {
			end := off + chunk
			if end > len(input) {
				end = len(input)
			}
			s.Feed(input[off:end])
		}
		s.Flush()
		sortScored(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: stream %v, one-shot %v", chunk, got, want)
		}
	}
}

// TestScoredArtifactRoundTrip: the weight table rides the artifact, and the
// loaded machine's scored output is identical.
func TestScoredArtifactRoundTrip(t *testing.T) {
	m, input := scoredFixture(t, DefaultConfig())
	var buf bytes.Buffer
	if err := m.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ScoreInfo() == nil {
		t.Fatal("weight table lost in artifact round trip")
	}
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded machine scored output diverges:\n%v\n%v", got, want)
	}
	if !reflect.DeepEqual(loaded.Match(input), m.Match(input)) {
		t.Fatal("loaded machine binary output diverges")
	}
}

// TestScoredConfigExclusions: Score with Tier or Shards is rejected before
// the pipeline runs, and scored paths on an unscored machine error.
func TestScoredConfigExclusions(t *testing.T) {
	n, w, err := workload.ScoredHamming([][]byte{[]byte("ACGTAC")}, 1, workload.DefaultAlignCosts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileAutomaton(n, Config{StrideDims: 2, Score: w, Tier: true}); err == nil {
		t.Fatal("Score+Tier accepted")
	}
	if _, err := CompileAutomaton(n, Config{StrideDims: 2, Score: w, Shards: 2}); err == nil {
		t.Fatal("Score+Shards accepted")
	}
	plain, err := CompileRegex([]string{"abc"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.MatchScored([]byte("abc")); err == nil {
		t.Fatal("MatchScored on unscored machine succeeded")
	}
	if _, err := plain.NewScoredStream(nil); err == nil {
		t.Fatal("NewScoredStream on unscored machine succeeded")
	}
	if plain.ScoreInfo() != nil {
		t.Fatal("ScoreInfo non-nil on unscored machine")
	}
}

// TestScoredStreamWriteResetStats: the io.Writer path matches Feed, Reset
// clears carried state (pending scores included) so a refeed reproduces
// the fresh result, and Stats accounts the fed bytes.
func TestScoredStreamWriteResetStats(t *testing.T) {
	m, input := scoredFixture(t, DefaultConfig())
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	sortScored(want)

	var got []ScoredMatch
	st, err := m.NewScoredStream(func(sm ScoredMatch) { got = append(got, sm) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(input); i += 9 {
		end := i + 9
		if end > len(input) {
			end = len(input)
		}
		nw, err := st.Write(input[i:end])
		if err != nil || nw != end-i {
			t.Fatalf("Write = (%d, %v), want (%d, nil)", nw, err, end-i)
		}
	}
	st.Flush()
	sortScored(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Write-fed stream diverges from one-shot:\n got: %v\nwant: %v", got, want)
	}
	// Engine-level reports count every threshold-cleared report; the
	// emitted matches are those max-merged per (end, pattern).
	if st.Stats().Cycles == 0 || st.Stats().Reports < len(got) {
		t.Fatalf("Stats() = %+v, want >= %d reports over >0 cycles", st.Stats(), len(got))
	}

	// Reset mid-stream: pending scores are dropped, and a full refeed
	// reproduces the fresh result.
	st.Reset()
	got = got[:0]
	st.Feed(input[:len(input)/2])
	st.Reset()
	got = got[:0]
	st.Feed(input)
	st.Flush()
	sortScored(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-Reset stream diverges from one-shot:\n got: %v\nwant: %v", got, want)
	}
}

// TestScoredMachineFromFile: the file-path loading entry points carry the
// weight table too.
func TestScoredMachineFromFile(t *testing.T) {
	m, input := scoredFixture(t, DefaultConfig())
	path := t.TempDir() + "/align.impala"
	var buf bytes.Buffer
	if err := m.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ScoreInfo() == nil {
		t.Fatal("weight table lost through LoadMachineFile")
	}
	want, err := m.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.MatchScored(input)
	if err != nil {
		t.Fatal(err)
	}
	sortScored(want)
	sortScored(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file-loaded scored matches diverge")
	}
}
