package impala

// Cross-system integration tests: real benchmark generators through the
// complete pipeline — V-TeSS compile, G4/G16 placement, bitstream build —
// with the capsule machine differentially checked against both the
// functional simulator and the untransformed automaton on benchmark-biased
// inputs. This is the whole-repository invariant in one place.

import (
	"testing"

	"impala/internal/arch"
	"impala/internal/core"
	"impala/internal/place"
	"impala/internal/sim"
	"impala/internal/workload"
)

func TestIntegrationBenchmarksEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	benchmarks := []string{"Bro217", "ExactMatch", "Hamming", "CoreRings", "Fermi"}
	configs := []core.Config{
		{TargetBits: 4, StrideDims: 2},
		{TargetBits: 4, StrideDims: 4},
	}
	for _, name := range benchmarks {
		b, ok := workload.Get(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		n, err := b.Generate(0.005, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		input := workload.Input(n, 8192, 13)
		want, _, err := sim.Run(n, input)
		if err != nil {
			t.Fatalf("%s: reference run: %v", name, err)
		}
		for _, cfg := range configs {
			res, err := core.Compile(n, cfg)
			if err != nil {
				t.Fatalf("%s %+v: compile: %v", name, cfg, err)
			}
			if !core.CapsuleLegal(res.NFA) {
				t.Fatalf("%s %+v: not capsule legal", name, cfg)
			}
			pl, err := place.Place(res.NFA, place.Options{Seed: 3})
			if err != nil {
				t.Fatalf("%s %+v: place: %v", name, cfg, err)
			}
			if !pl.Valid() {
				t.Fatalf("%s %+v: %d uncovered transitions", name, cfg, pl.TotalUncovered)
			}
			m, err := arch.Build(res.NFA, pl)
			if err != nil {
				t.Fatalf("%s %+v: build: %v", name, cfg, err)
			}
			gotHW, _ := m.Run(input)
			if !sim.SameReports(want, gotHW) {
				t.Fatalf("%s %+v: capsule machine diverges from original (%d vs %d reports)",
					name, cfg, len(gotHW), len(want))
			}
			gotSW, _, err := sim.Run(res.NFA, input)
			if err != nil {
				t.Fatalf("%s %+v: transformed run: %v", name, cfg, err)
			}
			if !sim.SameReports(want, gotSW) {
				t.Fatalf("%s %+v: simulator diverges from original", name, cfg)
			}
		}
	}
}

// TestIntegrationParallelMatchesMachine ties parallel splitting to the
// capsule machine across a benchmark.
func TestIntegrationParallelMatchesMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	b, _ := workload.Get("ExactMatch")
	n, err := b.Generate(0.004, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4})
	if err != nil {
		t.Fatal(err)
	}
	input := workload.Input(n, 16384, 19)
	seq, _, err := sim.Run(res.NFA, input)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.RunParallel(res.NFA, input, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.SameReports(seq, par) {
		t.Fatalf("parallel diverges: %d vs %d reports", len(par), len(seq))
	}
}
