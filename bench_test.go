package impala_test

// One benchmark per paper table/figure (regenerating its rows via the
// experiment harness), plus component micro-benchmarks and the ablation
// benches for the design choices DESIGN.md calls out. Custom metrics carry
// the reproduced quantities (overheads, Gbps, ratios) so `go test -bench`
// output doubles as a compact experiment log.

import (
	"io"
	"strconv"
	"testing"

	"impala/internal/arch"
	"impala/internal/automata"
	"impala/internal/core"
	"impala/internal/dfa"
	"impala/internal/espresso"
	"impala/internal/exp"
	"impala/internal/place"
	"impala/internal/regexc"
	"impala/internal/sim"
	"impala/internal/workload"
)

// benchOpts keeps every table/figure bench laptop-scale.
func benchOpts() exp.Options {
	return exp.Options{Scale: 0.01, Seed: 1, InputKB: 16, Strides: []int{1, 2, 4}}
}

func runExperiment(b *testing.B, runner exp.Runner, o exp.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := runner(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

// ---- one bench per table/figure ----

func BenchmarkFigure2(b *testing.B)       { runExperiment(b, exp.Figure2, benchOpts()) }
func BenchmarkTable1Compile(b *testing.B) { runExperiment(b, exp.Table1CompileTime, benchOpts()) }

func BenchmarkTable4VTeSS(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"Bro217", "ExactMatch", "Dotstar06", "Hamming", "CoreRings"}
	o.Strides = []int{1, 2, 4, 8}
	runExperiment(b, exp.Table4VTeSS, o)
}

func BenchmarkTable5Pipeline(b *testing.B) { runExperiment(b, exp.Table5Pipeline, benchOpts()) }

func BenchmarkFig13Throughput(b *testing.B) {
	runExperiment(b, exp.Figure13Throughput, benchOpts())
	imp := arch.Design{Arch: arch.Impala, Bits: 4, Stride: 4}
	ca := arch.Design{Arch: arch.CacheAutomaton, Bits: 8, Stride: 1}
	b.ReportMetric(imp.ThroughputGbps(), "Impala16_Gbps")
	b.ReportMetric(imp.ThroughputGbps()/ca.ThroughputGbps(), "Impala16/CA8")
}

func BenchmarkFig14Area(b *testing.B) {
	runExperiment(b, exp.Figure14Area, benchOpts())
	imp := arch.AreaBreakdown(arch.Design{Arch: arch.Impala, Bits: 4, Stride: 4}, 32*1024)
	ca := arch.AreaBreakdown(arch.Design{Arch: arch.CacheAutomaton, Bits: 8, Stride: 1}, 32*1024)
	b.ReportMetric(ca.StateMatchMM2/imp.StateMatchMM2, "SM_CA/Impala")
}

func BenchmarkFig11ThroughputPerArea(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"Bro217", "ExactMatch", "Dotstar06", "Snort", "CoreRings"}
	runExperiment(b, exp.Figure11ThroughputPerArea, o)
}

func BenchmarkFig12EnergyPower(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"Bro217", "ExactMatch"}
	runExperiment(b, exp.Figure12EnergyPower, o)
}

func BenchmarkTable6FPGA(b *testing.B) { runExperiment(b, exp.Table6FPGA, benchOpts()) }

func BenchmarkFig8Utilization(b *testing.B) { runExperiment(b, exp.Figure8Utilization, benchOpts()) }

func BenchmarkFig9Heatmap(b *testing.B) { runExperiment(b, exp.Figure9Heatmap, benchOpts()) }

func BenchmarkFig10G4Placement(b *testing.B) {
	o := benchOpts()
	o.Benchmarks = []string{"Bro217", "Dotstar06"}
	runExperiment(b, exp.Figure10G4, o)
}

func BenchmarkCaseStudyEntityResolution(b *testing.B) {
	runExperiment(b, exp.CaseStudyEntityResolution, benchOpts())
}

// ---- component micro-benchmarks ----

// benchNFA is a mid-size shared compile input.
func benchNFA(b *testing.B) *automata.NFA {
	b.Helper()
	bench, _ := workload.Get("Dotstar06")
	n, err := bench.Generate(0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func BenchmarkCompileImpala16(b *testing.B) {
	n := benchNFA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StateOverhead(n), "state_overhead")
	}
}

func BenchmarkCompileCA(b *testing.B) {
	n := benchNFA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(n, core.Config{TargetBits: 8, StrideDims: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementGA(b *testing.B) {
	n := benchNFA(b)
	res, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := place.Place(res.NFA, place.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !p.Valid() {
			b.Fatal("placement failed")
		}
	}
}

func BenchmarkEspressoMinimize(b *testing.B) {
	// A representative multi-region refinement instance: overlapping
	// 4-dimensional tiles (Figure 6 style).
	var on automata.MatchSet
	for k := byte(0); k < 6; k++ {
		rect := automata.Rect{
			rangeSet(k, k+4), rangeSet(1, 3), rangeSet(k, 15), automata.Domain(4),
		}
		on = on.Add(rect)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		espresso.Minimize(on, 4, 4, espresso.Options{})
	}
}

func rangeSet(lo, hi byte) (s [4]uint64) {
	for v := lo; v <= hi && v < 16; v++ {
		s[0] |= 1 << v
	}
	return s
}

// BenchmarkMachineThroughput measures the software capsule-level machine's
// scan rate (the hardware's is deterministic: 80 Gbps at 4-stride).
func BenchmarkMachineThroughput(b *testing.B) {
	for _, stride := range []int{2, 4} {
		b.Run("stride"+strconv.Itoa(stride), func(b *testing.B) {
			n := regexc.MustCompile([]regexc.Rule{
				{Pattern: "GET /", Code: 0},
				{Pattern: `\d+\.\d+`, Code: 1},
			})
			res, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: stride})
			if err != nil {
				b.Fatal(err)
			}
			pl, err := place.Place(res.NFA, place.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			m, err := arch.Build(res.NFA, pl)
			if err != nil {
				b.Fatal(err)
			}
			input := workload.Input(n, 64*1024, 3)
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Run(input)
			}
		})
	}
}

// BenchmarkFunctionalSimulator compares the two graph-simulator engines —
// the scalar reference Engine and the bit-parallel CompiledEngine that
// sim.Run/sim.RunParallel use by default — on a regex workload (Dotstar06)
// and a dense-activity mesh workload (Hamming), where the word-level match
// masks and wired-OR successor rows pay off most.
func BenchmarkFunctionalSimulator(b *testing.B) {
	for _, wl := range []struct {
		name  string
		scale float64
	}{{"Dotstar06", 0.02}, {"Hamming", 0.05}} {
		bench, _ := workload.Get(wl.name)
		n, err := bench.Generate(wl.scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		input := workload.Input(n, 64*1024, 3)
		b.Run(wl.name+"/scalar", func(b *testing.B) {
			e, err := sim.NewEngine(n)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(input, nil)
			}
		})
		b.Run(wl.name+"/compiled", func(b *testing.B) {
			c, err := sim.Compile(n)
			if err != nil {
				b.Fatal(err)
			}
			e := c.NewEngine()
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(input, nil)
			}
		})
	}
}

// ---- ablation benches ----

// BenchmarkAblationRefine quantifies Espresso refinement: states with and
// without capsule-legal splitting.
func BenchmarkAblationRefine(b *testing.B) {
	n := benchNFA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4, DisableRefine: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(with.NFA.NumStates())/float64(without.NFA.NumStates()), "refine_state_cost")
	}
}

// BenchmarkAblationMinimize quantifies the prefix/suffix merge passes.
func BenchmarkAblationMinimize(b *testing.B) {
	n := benchNFA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: 4, DisableMinimize: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(without.NFA.NumStates())/float64(with.NFA.NumStates()), "minimize_saving")
	}
}

// BenchmarkAblationPlacement compares BFS-only, repair-only and full GA
// placement on a block-straddling component.
func BenchmarkAblationPlacement(b *testing.B) {
	n := automata.New(8, 1)
	// One 700-state diagonal CC (forces straddling).
	prev := automata.StateID(-1)
	for i := 0; i < 700; i++ {
		kind := automata.StartNone
		if i == 0 {
			kind = automata.StartAllInput
		}
		id := n.AddState(automata.State{
			Match:      automata.MatchSet{automata.Rect{automata.Domain(8)}},
			Start:      kind,
			Report:     i == 699,
			ReportCode: 1,
		})
		if prev >= 0 {
			n.AddEdge(prev, id)
			if i%7 == 0 && i > 20 {
				n.AddEdge(id-10, id)
			}
		}
		prev = id
	}
	variants := []struct {
		name string
		opts place.Options
	}{
		{"bfs", place.Options{Seed: 1, DisableGA: true, DisableRepair: true}},
		{"repair", place.Options{Seed: 1, DisableGA: true}},
		{"full", place.Options{Seed: 1}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := place.Place(n, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(p.TotalUncovered), "uncovered")
			}
		})
	}
}

// BenchmarkAblationStrideSweep reproduces the paper's conclusion that
// 4-stride maximizes throughput per area: Gbps/mm² across stride values.
// Hamming has substantial 8-stride state blowup (paper: 22.97x), so the
// metric peaks at 4-stride; benchmarks with trivial 8-stride overhead would
// keep climbing.
func BenchmarkAblationStrideSweep(b *testing.B) {
	bench, _ := workload.Get("Hamming")
	n, err := bench.Generate(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, stride := range []int{1, 2, 4, 8} {
		b.Run("stride"+strconv.Itoa(stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(n, core.Config{TargetBits: 4, StrideDims: stride})
				if err != nil {
					b.Fatal(err)
				}
				full := int(float64(res.NFA.NumStates()) / 0.05)
				d := arch.Design{Arch: arch.Impala, Bits: 4, Stride: stride}
				b.ReportMetric(arch.ThroughputPerArea(d, full), "Gbps_per_mm2")
			}
		})
	}
}

// BenchmarkSoftwareDFA measures the table-driven DFA baseline's scan rate —
// the software point of comparison for the 10 GB/s hardware line rate.
func BenchmarkSoftwareDFA(b *testing.B) {
	bench, _ := workload.Get("Bro217")
	n, err := bench.Generate(0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dfa.Build(n, dfa.Options{})
	if err != nil {
		b.Fatal(err)
	}
	input := workload.Input(n, 1<<20, 5)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Scan(input)
	}
	b.ReportMetric(float64(d.NumStates()), "dfa_states")
}
