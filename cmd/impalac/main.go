// impalac is the offline compiler: it reads patterns (one regex per line)
// or an automaton JSON file, runs the V-TeSS pipeline at the chosen design
// point, places the result onto G4 switch units, and reports the
// transformation statistics and hardware model. Optionally it writes the
// transformed automaton as JSON for impala-sim.
//
// Usage:
//
//	impalac -rules rules.txt [-stride 4] [-ca] [-o out.json] [-seed 1]
//	impalac -rules rules.txt -o machine.impala   # sealed artifact for impala-serve / impala-sim -load
//	impalac -rules rules.txt -shards 4 -topo cluster.json -o machine.impala   # + cluster placement
//	impalac -rules rules.txt -trace trace.json   # Chrome trace of the pipeline
//	impalac -nfa automaton.json -stride 2
//	echo 'GET /|POST /' | impalac -patterns 'GET /,POST /'
//
// A -o path ending in .impala writes the versioned binary artifact
// (automaton + placement + compile provenance, checksummed); any other
// suffix writes the transformed automaton as JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"impala/internal/anml"
	"impala/internal/arch"
	"impala/internal/artifact"
	"impala/internal/automata"
	"impala/internal/backend"
	"impala/internal/core"
	"impala/internal/dfa"
	"impala/internal/obs"
	"impala/internal/place"
	"impala/internal/regexc"
	"impala/internal/score"
	"impala/internal/topo"
	"impala/internal/workload"
)

func main() {
	var (
		rulesFile = flag.String("rules", "", "file with one regex per line (lines starting with # ignored)")
		nfaFile   = flag.String("nfa", "", "automaton JSON file (8-bit stride-1)")
		anmlFile  = flag.String("anml", "", "ANML XML automaton file")
		patterns  = flag.String("patterns", "", "comma-separated regex patterns (alternative to -rules)")
		stride    = flag.Int("stride", 4, "sub-symbols per cycle (4-bit: 1/2/4/8; CA mode: 1/2)")
		caMode    = flag.Bool("ca", false, "target the Cache-Automaton 8-bit design point")
		out       = flag.String("o", "", "write the compiled output here (.impala = sealed binary artifact, else automaton JSON)")
		bitFile   = flag.String("bitstream", "", "write the full device configuration (bitstream) here")
		seed      = flag.Int64("seed", 1, "placement search seed")
		workers   = flag.Int("j", 0, "compile/placement worker pool size (0 = GOMAXPROCS); output is identical for any value")
		compare   = flag.Bool("compare", false, "compile at every design point and print a comparison table")
		traceOut  = flag.String("trace", "", "write a Chrome trace of the compile + placement pipeline here (open in chrome://tracing or Perfetto)")
		tier      = flag.Bool("tier", false, "run the tier-selection stage: determinize components within budget into a DFA fast path and seal the plan into the artifact")
		tierCap   = flag.Int("tier-budget", 0, "per-component determinization budget in DFA states for -tier (0 = default)")
		shards    = flag.Int("shards", 1, "partition components into this many shard automata (with -tier the DFA budgets apply per shard); the plan is sealed into the artifact")
		topoSpec  = flag.String("topo", "", "cluster topology (JSON file, inline JSON, or name[:cap[:bw]],... compact spec): place shards onto domains and seal the placement (requires -shards > 1)")
		bkName    = flag.String("backend", backend.DefaultName, "compile target (see -backend list)")

		scoreMode = flag.String("score", "", `build a weighted edit-distance mesh instead of compiling regexes: "lev" (Levenshtein) or "ham" (Hamming). -patterns/-rules entries are then literal byte strings; the transformed weight table is sealed into the artifact (SCOR) for scored serving`)
		scoreDist = flag.Int("score-d", 2, "with -score: per-pattern error budget")
		scoreCost = flag.String("score-costs", "1,-1,-2", "with -score: match,mismatch,gap costs")
		scoreThr  = flag.Float64("score-threshold", 0, "with -score: report threshold (hits scoring below it are suppressed on the scored paths)")
	)
	flag.Parse()

	if *bkName == "list" {
		for _, name := range backend.Names() {
			bk, _ := backend.Get(name)
			b, s := bk.DefaultGeometry()
			fmt.Printf("%-8s v%d  default %d-bit x%d  %s\n", name, bk.Version(), b, s, bk.Description())
		}
		return
	}
	bk, err := backend.Get(*bkName)
	if err != nil {
		fatal(err)
	}

	// Scored mode replaces the regex front end with a weighted mesh builder;
	// the mesh's weight table rides through the pipeline and the artifact.
	var weights *automata.Weights
	var nfa *automata.NFA
	if *scoreMode != "" {
		if *tier || *shards > 1 || *topoSpec != "" {
			fatal(fmt.Errorf("-score is mutually exclusive with -tier, -shards and -topo (the scored engine is single-tier)"))
		}
		if *nfaFile != "" || *anmlFile != "" || *compare {
			fatal(fmt.Errorf("-score builds its own automaton; use -patterns or -rules with literal strings"))
		}
		nfa, weights, err = buildScoredInput(*scoreMode, *rulesFile, *patterns, *scoreDist, *scoreCost, *scoreThr)
		if err != nil {
			fatal(err)
		}
	} else {
		nfa, err = loadInput(*rulesFile, *nfaFile, *anmlFile, *patterns)
		if err != nil {
			fatal(err)
		}
	}
	if *compare {
		compareDesigns(nfa)
		return
	}

	// Explicit -stride/-ca override the backend's native design point.
	bits, strideDims := bk.DefaultGeometry()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["ca"] || set["stride"] || bk.Name() == backend.DefaultName {
		bits = 4
		if *caMode {
			bits = 8
		}
		strideDims = *stride
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
	}
	cfg := core.Config{TargetBits: bits, StrideDims: strideDims, Workers: *workers, Trace: tr, Backend: bk.Name()}
	if *tier {
		cfg.Tier = &dfa.TierOptions{CCMaxStates: *tierCap}
	}
	cfg.Shards = *shards
	cfg.Weights = weights
	res, err := core.Compile(nfa, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("input automaton : %d states, %d transitions\n", nfa.NumStates(), nfa.NumTransitions())
	for _, st := range res.Stages {
		fmt.Printf("stage %-16s: %6d states, %7d transitions  (wall %s, cpu %s)\n",
			st.Name, st.States, st.Transitions, st.Duration.Round(0), st.CPUTime.Round(0))
	}
	fmt.Printf("state overhead  : %.2fx   transition overhead: %.2fx\n",
		res.StateOverhead(nfa), res.TransitionOverhead(nfa))
	fmt.Printf("espresso splits : %d extra states\n", res.SplitStates)
	if res.Tiers != nil {
		p := res.Tiers.Plan()
		fmt.Printf("tier plan       : %d/%d components on the DFA fast path (%d DFA states, %d KiB tables; %d NFA-tier states)\n",
			p.DFACCs(), len(p.CCs), p.DFAStates, p.DFATableBytes/1024, p.NFAStates)
	}
	if res.Shards != nil {
		p := res.Shards.Plan()
		fmt.Printf("shard plan      : %d components over %d shards (%d..%d states/shard; %d shard(s) carry a DFA fast path, %d DFA states total)\n",
			len(p.CCShard), p.Shards, p.MinStates(), p.MaxStates(),
			res.Shards.TieredShards(), res.Shards.DFAStates())
	}
	if res.Weights != nil {
		sc, err := score.Compile(res.NFA, res.Weights)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("score table     : %d weighted edges, threshold %g (%d state(s) on the scalar scoring fallback)\n",
			res.Weights.NumEdges(), res.Weights.Threshold, sc.ScalarScoredStates())
	}

	// Cluster placement: map the shard plan onto the named topology domains
	// and seal the assignment so workers can host their domain's subset.
	var topoSealed *topo.Sealed
	if *topoSpec != "" {
		if res.Shards == nil || res.Shards.Plan().Shards < 2 {
			fatal(fmt.Errorf("-topo requires -shards > 1"))
		}
		t, err := topo.LoadSpec(*topoSpec)
		if err != nil {
			fatal(err)
		}
		mw, err := topo.MergeWeights(res.NFA, res.Shards.Plan())
		if err != nil {
			fatal(err)
		}
		tp, err := topo.Place(res.Shards.Plan(), mw, t, topo.Options{Seed: *seed, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		names := t.Names()
		domainShards := make([]int, len(names))
		for _, d := range tp.ShardDomain {
			domainShards[d]++
		}
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d shard(s)/%d states", name, domainShards[i], tp.DomainStates[i])
		}
		fmt.Printf("topology        : %d domains [%s], makespan %.1f, cut cost %.1f\n",
			len(names), strings.Join(parts, ", "), tp.Makespan, tp.CutCost)
		if tp.Overflow > 0 {
			fmt.Printf("topology        : WARNING %d states over domain capacity\n", int(tp.Overflow))
		}
		topoSealed = &topo.Sealed{Topology: t, ShardDomain: tp.ShardDomain}
	}
	fmt.Printf("compile time    : %s  (espresso cover cache: %d hits / %d misses, %.0f%% hit rate)\n",
		res.CompileTime, res.CacheHits, res.CacheMisses, res.CacheHitRate()*100)

	pl, err := bk.Place(res.NFA, place.Options{Seed: *seed, Workers: *workers, Trace: tr})
	if err != nil {
		fatal(err)
	}
	unitLabel := "G4 units"
	if bk.Name() != backend.DefaultName {
		unitLabel = "match banks"
	}
	fmt.Printf("placement       : %d %s, %.1f states/group, %d uncovered, GA used %dx\n",
		len(pl.G4s), unitLabel, pl.AvgStatesPerG4(), pl.TotalUncovered, pl.GAInvocations)
	if !pl.Valid() {
		fatal(fmt.Errorf("placement failed: %d transitions unrouted", pl.TotalUncovered))
	}

	// The capsule machine and its bitstream exist only for the Impala
	// target; other backends report their analytical model instead.
	var m *arch.Machine
	md := bk.Model(res.NFA)
	fmt.Printf("design point    : %s, %.2f GHz, %.1f Gbps\n", md.Design, md.FreqGHz, md.ThroughputGbps)
	fmt.Printf("capacity        : %d rows (%d unit(s) of %d)\n", md.Rows, md.Units, md.UnitCapacity)
	fmt.Printf("area            : %.3f mm² (match %.3f + interconnect %.3f), %.2f Gbps/mm², %.2f pJ/byte\n",
		md.TotalMM2, md.MatchMM2, md.RouteMM2, md.ThroughputPerMM2, md.PJPerByte)
	if bk.Name() == backend.DefaultName {
		m, err = arch.Build(res.NFA, pl)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bitstream       : %d bytes\n", m.BitstreamBytes())
	} else if *bitFile != "" {
		fatal(fmt.Errorf("-bitstream is only available for the %s backend", backend.DefaultName))
	}

	if *out != "" {
		if strings.HasSuffix(*out, ".impala") {
			stages := make([]artifact.Stage, 0, len(res.Stages))
			for _, st := range res.Stages {
				stages = append(stages, artifact.Stage{
					Name: st.Name, States: st.States, Transitions: st.Transitions,
					Duration: st.Duration, CPUTime: st.CPUTime,
				})
			}
			a := artifact.New(res.NFA, pl, nfa, artifact.Meta{
				CAMode:      *caMode,
				Seed:        *seed,
				CreatedUnix: time.Now().Unix(),
			}, stages)
			if res.Tiers != nil {
				a.SetTier(res.Tiers.Seal())
			}
			if res.Shards != nil {
				a.SetShards(res.Shards.Seal())
			}
			if topoSealed != nil {
				a.SetTopo(topoSealed)
			}
			if res.Weights != nil {
				a.SetScore(res.Weights)
			}
			payload, err := bk.SealSection(res.NFA, pl)
			if err != nil {
				fatal(err)
			}
			a.SetBackend(bk.Name(), payload)
			if err := a.WriteFile(*out); err != nil {
				fatal(err)
			}
			info, err := artifact.StatFile(*out)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (artifact v%d, %d bytes)\n", *out, info.Version, info.SizeBytes)
		} else {
			data, err := json.Marshal(res.NFA)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}
	if *bitFile != "" {
		f, err := os.Create(*bitFile)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteConfig(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *bitFile)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d spans)\n", *traceOut, tr.Len())
	}
}

// compareDesigns compiles the automaton at every supported design point and
// prints the resulting shape, throughput and area side by side.
func compareDesigns(nfa *automata.NFA) {
	type point struct {
		label string
		cfg   core.Config
		d     arch.Design
	}
	points := []point{
		{"CA 8-bit", core.Config{TargetBits: 8, StrideDims: 1}, arch.Design{Arch: arch.CacheAutomaton, Bits: 8, Stride: 1}},
		{"CA 16-bit", core.Config{TargetBits: 8, StrideDims: 2}, arch.Design{Arch: arch.CacheAutomaton, Bits: 8, Stride: 2}},
		{"Impala 4-bit", core.Config{TargetBits: 4, StrideDims: 1}, arch.Design{Arch: arch.Impala, Bits: 4, Stride: 1}},
		{"Impala 8-bit", core.Config{TargetBits: 4, StrideDims: 2}, arch.Design{Arch: arch.Impala, Bits: 4, Stride: 2}},
		{"Impala 16-bit", core.Config{TargetBits: 4, StrideDims: 4}, arch.Design{Arch: arch.Impala, Bits: 4, Stride: 4}},
		{"Impala 32-bit", core.Config{TargetBits: 4, StrideDims: 8}, arch.Design{Arch: arch.Impala, Bits: 4, Stride: 8}},
	}
	fmt.Printf("%-14s %8s %8s %9s %10s %10s %12s\n",
		"design", "states", "overhead", "Gbps", "area mm2", "Gbps/mm2", "compile")
	for _, pt := range points {
		res, err := core.Compile(nfa, pt.cfg)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", pt.label, err)
			continue
		}
		area := arch.AreaBreakdown(pt.d, res.NFA.NumStates())
		fmt.Printf("%-14s %8d %8.2f %9.1f %10.3f %10.2f %12s\n",
			pt.label, res.NFA.NumStates(), res.StateOverhead(nfa),
			pt.d.ThroughputGbps(), area.TotalMM2(),
			arch.ThroughputPerArea(pt.d, res.NFA.NumStates()),
			res.CompileTime.Round(0))
	}
}

// buildScoredInput constructs the weighted edit-distance mesh for -score:
// literal patterns from -patterns/-rules, a cost table, and the report
// threshold sealed alongside the weights.
func buildScoredInput(mode, rulesFile, patterns string, d int, costSpec string, threshold float64) (*automata.NFA, *automata.Weights, error) {
	var pats [][]byte
	switch {
	case patterns != "":
		for _, p := range strings.Split(patterns, ",") {
			pats = append(pats, []byte(p))
		}
	case rulesFile != "":
		f, err := os.Open(rulesFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			pats = append(pats, []byte(line))
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("-score requires literal patterns via -patterns or -rules")
	}
	parts := strings.Split(costSpec, ",")
	if len(parts) != 3 {
		return nil, nil, fmt.Errorf("-score-costs wants match,mismatch,gap, got %q", costSpec)
	}
	var c workload.Costs
	for i, dst := range []*float64{&c.Match, &c.Mismatch, &c.Gap} {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("-score-costs %q: %v", costSpec, err)
		}
		*dst = v
	}
	switch mode {
	case "lev":
		return workload.ScoredLevenshtein(pats, d, c, threshold)
	case "ham":
		return workload.ScoredHamming(pats, d, c, threshold)
	default:
		return nil, nil, fmt.Errorf("unknown -score mode %q (want lev or ham)", mode)
	}
}

func loadInput(rulesFile, nfaFile, anmlFile, patterns string) (*automata.NFA, error) {
	switch {
	case anmlFile != "":
		f, err := os.Open(anmlFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return anml.Parse(f)
	case nfaFile != "":
		data, err := os.ReadFile(nfaFile)
		if err != nil {
			return nil, err
		}
		var n automata.NFA
		if err := json.Unmarshal(data, &n); err != nil {
			return nil, err
		}
		return &n, nil
	case rulesFile != "":
		f, err := os.Open(rulesFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var rules []regexc.Rule
		sc := bufio.NewScanner(f)
		code := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			rules = append(rules, regexc.Rule{Pattern: line, Code: code})
			code++
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return regexc.Compile(rules)
	case patterns != "":
		var rules []regexc.Rule
		for i, p := range strings.Split(patterns, ",") {
			rules = append(rules, regexc.Rule{Pattern: p, Code: i})
		}
		return regexc.Compile(rules)
	default:
		return nil, fmt.Errorf("impalac: one of -rules, -nfa, -anml, -patterns is required")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impalac:", err)
	os.Exit(1)
}
