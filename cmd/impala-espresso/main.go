// impala-espresso is a standalone multi-valued two-level logic minimizer
// with espresso-style text I/O (the §5.1.2 interface): it reads an ON-set
// cover of multi-valued cubes from a .mv PLA file (or stdin), minimizes it,
// and writes the minimal cover. Each output product term is guaranteed to
// cause no false positives and can be configured on one Impala capsule.
//
// Usage:
//
//	impala-espresso < states.pla > minimized.pla
//	impala-espresso -in states.pla -out minimized.pla -iters 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"impala/internal/espresso"
)

func main() {
	var (
		inFile  = flag.String("in", "", "input PLA file (default stdin)")
		outFile = flag.String("out", "", "output PLA file (default stdout)")
		iters   = flag.Int("iters", 0, "max EXPAND/IRREDUNDANT/REDUCE iterations (0 = default)")
		stats   = flag.Bool("v", false, "print cube statistics to stderr")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	pla, err := espresso.ParsePLA(in)
	if err != nil {
		fatal(err)
	}

	min := espresso.Minimize(pla.On, pla.Stride, pla.Bits, espresso.Options{MaxIterations: *iters})
	if *stats {
		fmt.Fprintf(os.Stderr, "impala-espresso: %d variables x %d values, %d -> %d product terms\n",
			pla.Stride, 1<<pla.Bits, len(pla.On), len(min))
	}

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := espresso.WritePLA(out, min, pla.Stride, pla.Bits); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-espresso:", err)
	os.Exit(1)
}
