// impala-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	impala-bench -exp all                 # every experiment
//	impala-bench -exp fig11 -scale 0.05   # one experiment, larger scale
//	impala-bench -exp table4 -bench Snort,TCP -strides 1,2,4
//	impala-bench -list
//
// Experiment IDs: fig2 table1 table4 table5 fig13 fig14 fig11 fig12 table6
// fig8 fig9 fig10 casestudy system ablate rounds squash software simspeed
// compilespeed.
//
// The compilespeed experiment sweeps the compile worker pool over a
// regex-family subset with the memoized Espresso cover cache on and off,
// and with -json FILE writes the measurements as a JSON report (including a
// metrics snapshot of the worker pool and cover cache). -check FILE compares
// the fresh report against a stored baseline and exits nonzero when the
// cache hit rate, cache speedup, or compiled automaton shape regresses
// beyond -tolerance / -hit-tolerance — the CI regression gate. -parallel N
// runs N benchmark × design-point cells of the compile-heavy experiments
// concurrently (results are identical; per-cell wall times get noisy).
//
// The simspeed experiment compares the functional simulator's scalar
// reference engine against the bit-parallel compiled engine (the default
// behind every activity-driven experiment in this binary), and sweeps the
// incremental Session/Feed streaming path across chunk sizes, reporting
// throughput and allocs per Feed call (zero in steady state).
//
// The servespeed experiment measures the impala-serve one-shot match path
// end to end over loopback HTTP at 1/8/64 concurrent clients; -json FILE
// embeds the cells and a serving-metrics snapshot in a JSON report (the
// committed BENCH_serve.json baseline); -check FILE gates CI on the match
// counts (exact, same scale/seed) and on the concurrency speedup (within
// -tolerance, MinWallMS-guarded).
//
// The shardspeed experiment sweeps the shard count over K in {1,2,4,8}
// across the four workload families, holding the per-engine DFA budget
// fixed so K shards carry K budgets: throughput rises with K even on one
// core (more states on the dense fast path) and fans out across shards on
// a multi-core host. -json FILE writes the report (the committed
// BENCH_shard.json baseline); -check FILE gates CI on partition shape
// (exact, same scale/seed), on each point's speedup over its own K=1 row
// (within -tolerance), and on at least two families retaining a 2x
// speedup at K=8.
//
// The clustersweep experiment deploys each workload family's K-shard
// machine (K in {2,4}) as a cluster: the shard plan is placed onto two
// topologies (a flat two-domain cluster and a skewed three-domain one),
// sealed into a v4 artifact, and served through one worker process per
// domain behind a frontend — all in-process over loopback HTTP. Each cell
// cross-checks the frontend's merged rows byte-for-byte against a single
// process hosting every shard and against the in-process match set, and
// drives the NDJSON stream fan-out. -json FILE writes the report (the
// committed BENCH_cluster.json baseline); -check FILE gates CI exactly on
// every deterministic column (placement, domain loads, cut cost, match
// counts) with no wall-clock term — a fully hermetic gate.
//
// The tierspeed experiment measures the hybrid tiered engine (dense-DFA
// fast path per connected component, bit-parallel NFA fallback) against the
// compiled NFA engine and the scalar reference across the four workload
// families, serially and with the rescan-free parallel scan. -json FILE
// writes the report (the committed BENCH_sim.json baseline); -check FILE
// gates CI on tier-plan shape (exact, same scale/seed) and on the
// tiered-over-compiled speedup (within -tolerance).
//
// The backendcmp experiment compiles every benchmark for both registered
// compile targets (the Impala capsule design and the CAMA-style CAM rows,
// both at 16 bits/cycle) and tabulates their capacity/energy/throughput
// models side by side, cross-checking that both produce identical match
// reports. -json FILE writes the report (the committed BENCH_backend.json
// baseline); -check FILE gates CI exactly on every deterministic column.
//
// The scorespeed experiment runs the scored max-plus engine against the
// binary compiled engine over the two scored universes (DNA-read alignment
// on the edit-distance mesh, fuzzy entity resolution on the Hamming mesh),
// cross-checking that a threshold-free weight table reproduces the binary
// report set exactly. -json FILE writes the report (the committed
// BENCH_score.json baseline); -check FILE gates CI on workload shape and
// report counts (exact, same scale/seed) and on the scored engine's
// retained throughput (within -tolerance, MinWallMS-guarded).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"impala/internal/dfa"
	"impala/internal/exp"
	"impala/internal/obs"
	"impala/internal/par"
	"impala/internal/score"
	"impala/internal/shard"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ID(s), comma-separated, or 'all'")
		scale    = flag.Float64("scale", 0.02, "benchmark scale relative to paper size (1.0 = full)")
		seed     = flag.Int64("seed", 1, "generator/search seed")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all 21)")
		inputKB  = flag.Int("input-kb", 64, "input stream size for the energy and engine-speed experiments")
		strides  = flag.String("strides", "", "comma-separated stride list for table4 (default 1,2,4,8)")
		dumpDir  = flag.String("dump", "", "write each table as CSV into this directory")
		parallel = flag.Int("parallel", 1, "benchmark × design-point cells to run concurrently (tables identical for any value; >1 perturbs per-cell wall times)")
		jsonOut  = flag.String("json", "", "write the compilespeed/servespeed report as JSON to this file")
		check    = flag.String("check", "", "compare the compilespeed report against this baseline JSON and exit nonzero on regression")
		tol      = flag.Float64("tolerance", 0.25, "allowed fractional drop in speedup_vs_uncached for -check")
		hitTol   = flag.Float64("hit-tolerance", 0.02, "allowed absolute drop in cache hit rate for -check")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	o := exp.Options{Scale: *scale, Seed: *seed, InputKB: *inputKB, DumpDir: *dumpDir, Parallel: *parallel}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *strides != "" {
		for _, s := range strings.Split(*strides, ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				fatal(fmt.Errorf("bad stride %q", s))
			}
			o.Strides = append(o.Strides, v)
		}
	}

	reg := exp.Registry()
	ids := exp.IDs()
	if *expID != "all" {
		ids = strings.Split(*expID, ",")
		for _, id := range ids {
			if reg[id] == nil {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
		}
	}

	for _, id := range ids {
		t0 := time.Now()
		if id == "compilespeed" && (*jsonOut != "" || *check != "") {
			if err := runCompileSpeed(o, *jsonOut, *check, *tol, *hitTol); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "tierspeed" && (*jsonOut != "" || *check != "") {
			if err := runTierSpeed(o, *jsonOut, *check, *tol); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "backendcmp" && (*jsonOut != "" || *check != "") {
			if err := runBackendCmp(o, *jsonOut, *check); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "shardspeed" && (*jsonOut != "" || *check != "") {
			if err := runShardSpeed(o, *jsonOut, *check, *tol); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "clustersweep" && (*jsonOut != "" || *check != "") {
			if err := runClusterSweep(o, *jsonOut, *check); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "scorespeed" && (*jsonOut != "" || *check != "") {
			if err := runScoreSpeed(o, *jsonOut, *check, *tol); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		if id == "servespeed" && (*jsonOut != "" || *check != "") {
			if err := runServeSpeed(o, *jsonOut, *check, *tol); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		tables, err := reg[id](o)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		if err := exp.Dump(o, tables); err != nil {
			fatal(fmt.Errorf("%s: dump: %w", id, err))
		}
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

// runCompileSpeed runs the compilespeed experiment once (instrumented, so
// the report carries a metrics snapshot), renders its table, optionally
// writes the JSON report, and optionally checks it against a stored baseline
// — one measurement run serves all three outputs. A regression against the
// baseline is an error (nonzero exit), with one line per violated bound.
func runCompileSpeed(o exp.Options, jsonPath, checkPath string, tol, hitTol float64) error {
	reg := obs.NewRegistry()
	par.EnableMetrics(reg)
	defer par.EnableMetrics(nil)
	o.Metrics = reg

	rep, err := exp.CompileSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadCompileReport(f)
		f.Close()
		if err != nil {
			return err
		}
		opt := exp.CheckOptions{SpeedupTolerance: tol, HitRateTolerance: hitTol}
		if bad := exp.CompareReports(base, rep, opt); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells within tolerance)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runTierSpeed runs the tierspeed experiment once (instrumented with the
// per-tier scan counters), renders its table, optionally writes the JSON
// report, and optionally checks it against a stored baseline — the
// BENCH_sim.json half of the CI regression gate. Tier-plan shape must match
// the baseline exactly on a same-scale/seed run; the tiered-over-compiled
// speedup may not drop more than -tolerance below baseline.
func runTierSpeed(o exp.Options, jsonPath, checkPath string, tol float64) error {
	reg := obs.NewRegistry()
	dfa.EnableMetrics(reg)
	defer dfa.EnableMetrics(nil)
	o.Metrics = reg

	rep, err := exp.TierSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadTierReport(f)
		f.Close()
		if err != nil {
			return err
		}
		opt := exp.CheckOptions{SpeedupTolerance: tol}
		if bad := exp.CompareTierReports(base, rep, opt); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells within tolerance)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runBackendCmp runs the backendcmp experiment once, renders its table,
// optionally writes the JSON report, and optionally checks it against a
// stored baseline — the BENCH_backend.json third of the CI regression gate.
// Every deterministic column (compiled shape, placement grouping, the
// backend's analytical capacity/energy/area model) must match the baseline
// exactly on a same-scale/seed run; the measured MB/s column is never gated.
func runBackendCmp(o exp.Options, jsonPath, checkPath string) error {
	rep, err := exp.BackendCmpReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadBackendReport(f)
		f.Close()
		if err != nil {
			return err
		}
		if bad := exp.CompareBackendReports(base, rep, exp.CheckOptions{}); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells match)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runShardSpeed runs the shardspeed experiment once (instrumented with the
// shard-execution counters), renders its table, optionally writes the JSON
// report, and optionally checks it against a stored baseline — the
// BENCH_shard.json part of the CI regression gate. Partition shape must
// match the baseline exactly on a same-scale/seed run; each sweep point's
// speedup over its own K=1 row may not drop more than -tolerance below
// baseline, and at least two families must keep a 2x speedup at K=8.
func runShardSpeed(o exp.Options, jsonPath, checkPath string, tol float64) error {
	reg := obs.NewRegistry()
	shard.EnableMetrics(reg)
	defer shard.EnableMetrics(nil)
	o.Metrics = reg

	rep, err := exp.ShardSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadShardReport(f)
		f.Close()
		if err != nil {
			return err
		}
		opt := exp.CheckOptions{SpeedupTolerance: tol}
		if bad := exp.CompareShardReports(base, rep, opt); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells within tolerance)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runClusterSweep runs the clustersweep experiment once (instrumented with
// the frontend's cluster counters), renders its table, optionally writes
// the JSON report, and optionally checks it against a stored baseline —
// the BENCH_cluster.json part of the CI regression gate. Every gated column
// (placement, domain loads, cut cost, served match counts) is deterministic
// for a fixed scale/seed, so the gate is exact with no wall-clock term.
func runClusterSweep(o exp.Options, jsonPath, checkPath string) error {
	reg := obs.NewRegistry()
	o.Metrics = reg

	rep, err := exp.ClusterSweepReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadClusterReport(f)
		f.Close()
		if err != nil {
			return err
		}
		if bad := exp.CompareClusterReports(base, rep, exp.CheckOptions{}); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells match)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runServeSpeed runs the servespeed experiment instrumented (the report
// carries a snapshot of the serving counters), renders its table,
// optionally writes the JSON report, and optionally checks it against a
// stored baseline — the BENCH_serve.json part of the CI regression gate.
func runServeSpeed(o exp.Options, jsonPath, checkPath string, tol float64) error {
	reg := obs.NewRegistry()
	o.Metrics = reg

	rep, err := exp.ServeSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadServeReport(f)
		f.Close()
		if err != nil {
			return err
		}
		opt := exp.CheckOptions{SpeedupTolerance: tol}
		if bad := exp.CompareServeReports(base, rep, opt); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells within tolerance)\n", checkPath, len(base.Cells))
	}
	return nil
}

// runScoreSpeed runs the scorespeed experiment once (instrumented with the
// scored-engine counters), renders its table, optionally writes the JSON
// report, and optionally checks it against a stored baseline — the
// BENCH_score.json part of the CI regression gate. Workload shape and both
// report counts must match the baseline exactly on a same-scale/seed run;
// the scored engine's retained throughput relative to the binary engine may
// not drop more than -tolerance below baseline.
func runScoreSpeed(o exp.Options, jsonPath, checkPath string, tol float64) error {
	reg := obs.NewRegistry()
	score.EnableMetrics(reg)
	defer score.EnableMetrics(nil)
	o.Metrics = reg

	rep, err := exp.ScoreSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if checkPath != "" {
		f, err := os.Open(checkPath)
		if err != nil {
			return err
		}
		base, err := exp.ReadScoreReport(f)
		f.Close()
		if err != nil {
			return err
		}
		opt := exp.CheckOptions{SpeedupTolerance: tol}
		if bad := exp.CompareScoreReports(base, rep, opt); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "regression: %s\n", msg)
			}
			return fmt.Errorf("%d regression(s) vs %s", len(bad), checkPath)
		}
		fmt.Printf("check vs %s: pass (%d cells within tolerance)\n", checkPath, len(base.Cells))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-bench:", err)
	os.Exit(1)
}
