// impala-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	impala-bench -exp all                 # every experiment
//	impala-bench -exp fig11 -scale 0.05   # one experiment, larger scale
//	impala-bench -exp table4 -bench Snort,TCP -strides 1,2,4
//	impala-bench -list
//
// Experiment IDs: fig2 table1 table4 table5 fig13 fig14 fig11 fig12 table6
// fig8 fig9 fig10 casestudy system ablate rounds squash software simspeed.
//
// The simspeed experiment compares the functional simulator's scalar
// reference engine against the bit-parallel compiled engine (the default
// behind every activity-driven experiment in this binary), and sweeps the
// incremental Session/Feed streaming path across chunk sizes, reporting
// throughput and allocs per Feed call (zero in steady state).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"impala/internal/exp"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment ID(s), comma-separated, or 'all'")
		scale   = flag.Float64("scale", 0.02, "benchmark scale relative to paper size (1.0 = full)")
		seed    = flag.Int64("seed", 1, "generator/search seed")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: all 21)")
		inputKB = flag.Int("input-kb", 64, "input stream size for energy experiments")
		strides = flag.String("strides", "", "comma-separated stride list for table4 (default 1,2,4,8)")
		dumpDir = flag.String("dump", "", "write each table as CSV into this directory")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	o := exp.Options{Scale: *scale, Seed: *seed, InputKB: *inputKB, DumpDir: *dumpDir}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *strides != "" {
		for _, s := range strings.Split(*strides, ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				fatal(fmt.Errorf("bad stride %q", s))
			}
			o.Strides = append(o.Strides, v)
		}
	}

	reg := exp.Registry()
	ids := exp.IDs()
	if *expID != "all" {
		ids = strings.Split(*expID, ",")
		for _, id := range ids {
			if reg[id] == nil {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
		}
	}

	for _, id := range ids {
		t0 := time.Now()
		tables, err := reg[id](o)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		if err := exp.Dump(o, tables); err != nil {
			fatal(fmt.Errorf("%s: dump: %w", id, err))
		}
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-bench:", err)
	os.Exit(1)
}
