// impala-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	impala-bench -exp all                 # every experiment
//	impala-bench -exp fig11 -scale 0.05   # one experiment, larger scale
//	impala-bench -exp table4 -bench Snort,TCP -strides 1,2,4
//	impala-bench -list
//
// Experiment IDs: fig2 table1 table4 table5 fig13 fig14 fig11 fig12 table6
// fig8 fig9 fig10 casestudy system ablate rounds squash software simspeed
// compilespeed.
//
// The compilespeed experiment sweeps the compile worker pool over a
// regex-family subset with the memoized Espresso cover cache on and off,
// and with -json FILE writes the measurements as a JSON report. -parallel N
// runs N benchmark × design-point cells of the compile-heavy experiments
// concurrently (results are identical; per-cell wall times get noisy).
//
// The simspeed experiment compares the functional simulator's scalar
// reference engine against the bit-parallel compiled engine (the default
// behind every activity-driven experiment in this binary), and sweeps the
// incremental Session/Feed streaming path across chunk sizes, reporting
// throughput and allocs per Feed call (zero in steady state).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"impala/internal/exp"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ID(s), comma-separated, or 'all'")
		scale    = flag.Float64("scale", 0.02, "benchmark scale relative to paper size (1.0 = full)")
		seed     = flag.Int64("seed", 1, "generator/search seed")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: all 21)")
		inputKB  = flag.Int("input-kb", 64, "input stream size for energy experiments")
		strides  = flag.String("strides", "", "comma-separated stride list for table4 (default 1,2,4,8)")
		dumpDir  = flag.String("dump", "", "write each table as CSV into this directory")
		parallel = flag.Int("parallel", 1, "benchmark × design-point cells to run concurrently (tables identical for any value; >1 perturbs per-cell wall times)")
		jsonOut  = flag.String("json", "", "write the compilespeed report as JSON to this file (compilespeed only)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	o := exp.Options{Scale: *scale, Seed: *seed, InputKB: *inputKB, DumpDir: *dumpDir, Parallel: *parallel}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}
	if *strides != "" {
		for _, s := range strings.Split(*strides, ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				fatal(fmt.Errorf("bad stride %q", s))
			}
			o.Strides = append(o.Strides, v)
		}
	}

	reg := exp.Registry()
	ids := exp.IDs()
	if *expID != "all" {
		ids = strings.Split(*expID, ",")
		for _, id := range ids {
			if reg[id] == nil {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
			}
		}
	}

	for _, id := range ids {
		t0 := time.Now()
		if id == "compilespeed" && *jsonOut != "" {
			if err := runCompileSpeedJSON(o, *jsonOut); err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
			continue
		}
		tables, err := reg[id](o)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		if err := exp.Dump(o, tables); err != nil {
			fatal(fmt.Errorf("%s: dump: %w", id, err))
		}
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

// runCompileSpeedJSON runs the compilespeed experiment once, renders its
// table, and writes the JSON report to path — one measurement run serves
// both outputs.
func runCompileSpeedJSON(o exp.Options, path string) error {
	rep, err := exp.CompileSpeedReport(o)
	if err != nil {
		return err
	}
	rep.Table().Render(os.Stdout)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-bench:", err)
	os.Exit(1)
}
