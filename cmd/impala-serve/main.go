// impala-serve is the match-online daemon: it loads compiled-automaton
// artifacts (impalac -o machine.impala) into a multi-tenant registry and
// serves matching over HTTP — one-shot batched matching and long-lived
// chunked streaming — without ever running the compile pipeline.
//
// Usage:
//
//	impala-serve -load web=web.impala -load ids=snort.impala -listen :8600
//	impala-serve -dir artifacts/ -listen :8600 -ops :9090
//
//	curl -s --data-binary 'GET /index' localhost:8600/v1/web/match
//	cat flow.bin | curl -sN -T- localhost:8600/v1/web/stream
//	curl -s localhost:8600/v1/tenants
//	curl -s -X POST localhost:8600/v1/web/reload    # hot-swap after recompile
//
// Cluster roles (-role): a topology-sealed artifact (impalac -topo) deploys
// as worker processes, each hosting its domain's shard subset, behind a
// frontend that fans requests out and merges the report streams:
//
//	impala-serve -role worker -domain node0 -load web=web.impala -listen :8601
//	impala-serve -role worker -domain node1 -load web=web.impala -listen :8602
//	impala-serve -role frontend -workers node0=http://h1:8601,node1=http://h2:8602 -listen :8600
//
// The frontend's merged /match responses are byte-identical with a single
// process hosting every shard; a worker failure degrades to an explicit
// partial-result error (502) naming the failed workers.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// matches and streams complete, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"impala/internal/dfa"
	"impala/internal/obs"
	"impala/internal/score"
	"impala/internal/server"
	"impala/internal/shard"
	"impala/internal/sim"
)

func main() {
	var (
		listen   = flag.String("listen", ":8600", "serving address")
		ops      = flag.String("ops", "", "ops endpoint address (/metrics JSON, /debug/vars, /debug/pprof); empty = disabled")
		dir      = flag.String("dir", "", "load every *.impala in this directory (tenant = file base name)")
		workers  = flag.String("workers", "", "single/worker roles: match pool size (0 = GOMAXPROCS); frontend role: comma-separated worker endpoints (name=URL or URL)")
		queue    = flag.Int("queue", 64, "match admission queue length (full queue = 503)")
		streams  = flag.Int("max-streams", 256, "concurrent streaming connections (excess = 503)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request match timeout")
		maxBody  = flag.Int64("max-body", 16<<20, "maximum one-shot match payload bytes")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")

		role        = flag.String("role", "single", "process role: single | worker | frontend")
		domain      = flag.String("domain", "", "worker: host only the shards the artifact's topology places on this domain")
		workerTO    = flag.Duration("worker-timeout", 10*time.Second, "frontend: per-worker request timeout")
		healthEvery = flag.Duration("health-interval", 2*time.Second, "frontend: worker health-check cadence")
	)
	flag.Parse()

	switch *role {
	case "single", "worker", "frontend":
	default:
		fatal(fmt.Errorf("unknown -role %q (want single, worker or frontend)", *role))
	}
	if *domain != "" && *role != "worker" {
		fatal(fmt.Errorf("-domain requires -role worker"))
	}

	// One registry feeds both the server instruments and the streaming-layer
	// counters; the ops listener serves it live.
	var reg *obs.Registry
	if *ops != "" {
		reg = obs.NewRegistry()
		sim.EnableMetrics(reg)
		dfa.EnableMetrics(reg)
		shard.EnableMetrics(reg)
		score.EnableMetrics(reg)
	}

	var handler http.Handler
	var drain func()
	if *role == "frontend" {
		if *workers == "" {
			fatal(fmt.Errorf("-role frontend requires -workers name=URL,name=URL"))
		}
		specs, err := server.ParseWorkers(*workers)
		if err != nil {
			fatal(err)
		}
		fe, err := server.NewFrontend(server.ClusterConfig{
			Workers:        specs,
			WorkerTimeout:  *workerTO,
			HealthInterval: *healthEvery,
			MaxBodyBytes:   *maxBody,
			Metrics:        reg,
		})
		if err != nil {
			fatal(err)
		}
		for _, spec := range specs {
			fmt.Fprintf(os.Stderr, "impala-serve: worker %q at %s\n", spec.Name, spec.URL)
		}
		handler = fe.Handler()
		drain = fe.Drain
	} else {
		poolSize := 0
		if *workers != "" {
			var err error
			if poolSize, err = strconv.Atoi(*workers); err != nil {
				fatal(fmt.Errorf("-workers: want a pool size for role %q, got %q", *role, *workers))
			}
		}
		srv := server.New(server.Config{
			Workers:        poolSize,
			QueueLen:       *queue,
			MaxStreams:     *streams,
			RequestTimeout: *timeout,
			MaxBodyBytes:   *maxBody,
			Metrics:        reg,
		})
		loadTenants(srv, *dir, *domain)
		handler = srv.Handler()
		drain = srv.Drain
	}

	if *ops != "" {
		_, url, err := obs.Serve(*ops, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "impala-serve: ops endpoint on %s\n", url)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "impala-serve: role %s serving on %s\n", *role, ln.Addr())

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "impala-serve: %s: draining (up to %s)\n", s, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "impala-serve: shutdown: %v\n", err)
		}
		drain()
		fmt.Fprintln(os.Stderr, "impala-serve: drained cleanly")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// loadTenants fills the registry from -load/-dir, restricted to a topology
// domain for -role worker.
func loadTenants(srv *server.Server, dir, domain string) {
	loads := append([]string(nil), loadFlags...)
	if dir != "" {
		paths, err := filepath.Glob(filepath.Join(dir, "*.impala"))
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".impala")
			loads = append(loads, name+"="+p)
		}
	}
	if len(loads) == 0 {
		fatal(fmt.Errorf("no tenants: use -load name=artifact.impala or -dir"))
	}
	for _, lv := range loads {
		name, path, _ := strings.Cut(lv, "=")
		t, err := srv.Tenants().LoadFileDomain(name, path, domain)
		if err != nil {
			fatal(err)
		}
		bits, stride := t.Machine.Geometry()
		suffix := ""
		if domain != "" {
			suffix = fmt.Sprintf(", domain %q", domain)
		}
		if si := t.Machine.ScoreInfo(); si != nil {
			suffix += fmt.Sprintf(", scored (threshold %g)", si.Threshold)
		}
		fmt.Fprintf(os.Stderr, "impala-serve: tenant %q: %d states, %d-bit stride-%d, %d groups (%s)%s\n",
			name, t.Machine.Model().States, bits, stride, t.Machine.Model().G4s, path, suffix)
	}
}

// loadFlags collects the repeatable -load values.
var loadFlags []string

func init() {
	flag.Func("load", "tenant=artifact.impala (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want tenant=path, got %q", v)
		}
		loadFlags = append(loadFlags, v)
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-serve:", err)
	os.Exit(1)
}
