// impala-serve is the match-online daemon: it loads compiled-automaton
// artifacts (impalac -o machine.impala) into a multi-tenant registry and
// serves matching over HTTP — one-shot batched matching and long-lived
// chunked streaming — without ever running the compile pipeline.
//
// Usage:
//
//	impala-serve -load web=web.impala -load ids=snort.impala -listen :8600
//	impala-serve -dir artifacts/ -listen :8600 -ops :9090
//
//	curl -s --data-binary 'GET /index' localhost:8600/v1/web/match
//	cat flow.bin | curl -sN -T- localhost:8600/v1/web/stream
//	curl -s localhost:8600/v1/tenants
//	curl -s -X POST localhost:8600/v1/web/reload    # hot-swap after recompile
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// matches and streams complete, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"impala/internal/dfa"
	"impala/internal/obs"
	"impala/internal/server"
	"impala/internal/shard"
	"impala/internal/sim"
)

func main() {
	var (
		listen   = flag.String("listen", ":8600", "serving address")
		ops      = flag.String("ops", "", "ops endpoint address (/metrics JSON, /debug/vars, /debug/pprof); empty = disabled")
		dir      = flag.String("dir", "", "load every *.impala in this directory (tenant = file base name)")
		workers  = flag.Int("workers", 0, "one-shot match worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "match admission queue length (full queue = 503)")
		streams  = flag.Int("max-streams", 256, "concurrent streaming connections (excess = 503)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request match timeout")
		maxBody  = flag.Int64("max-body", 16<<20, "maximum one-shot match payload bytes")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
	)
	var loads []string
	flag.Func("load", "tenant=artifact.impala (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want tenant=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	// One registry feeds both the server instruments and the streaming-layer
	// counters; the ops listener serves it live.
	var reg *obs.Registry
	if *ops != "" {
		reg = obs.NewRegistry()
		sim.EnableMetrics(reg)
		dfa.EnableMetrics(reg)
		shard.EnableMetrics(reg)
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueLen:       *queue,
		MaxStreams:     *streams,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Metrics:        reg,
	})

	if *dir != "" {
		paths, err := filepath.Glob(filepath.Join(*dir, "*.impala"))
		if err != nil {
			fatal(err)
		}
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".impala")
			loads = append(loads, name+"="+p)
		}
	}
	if len(loads) == 0 {
		fatal(fmt.Errorf("no tenants: use -load name=artifact.impala or -dir"))
	}
	for _, lv := range loads {
		name, path, _ := strings.Cut(lv, "=")
		t, err := srv.Tenants().LoadFile(name, path)
		if err != nil {
			fatal(err)
		}
		bits, stride := t.Machine.Geometry()
		fmt.Fprintf(os.Stderr, "impala-serve: tenant %q: %d states, %d-bit stride-%d, %d groups (%s)\n",
			name, t.Machine.Model().States, bits, stride, t.Machine.Model().G4s, path)
	}

	if *ops != "" {
		_, url, err := obs.Serve(*ops, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "impala-serve: ops endpoint on %s\n", url)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "impala-serve: serving %d tenant(s) on %s\n", srv.Tenants().Len(), ln.Addr())

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "impala-serve: %s: draining (up to %s)\n", s, *drainFor)
		ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "impala-serve: shutdown: %v\n", err)
		}
		srv.Drain()
		fmt.Fprintln(os.Stderr, "impala-serve: drained cleanly")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-serve:", err)
	os.Exit(1)
}
