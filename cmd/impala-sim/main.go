// impala-sim runs an input stream through a compiled automaton (from
// impalac -o, or compiled on the fly from -patterns) and prints the match
// reports and activity statistics.
//
// Usage:
//
//	impala-sim -nfa out.json -in payload.bin
//	impala-sim -load machine.impala -in payload.bin   # sealed artifact, no compile
//	impala-sim -load machine.impala -v                # print the artifact header
//	impala-sim -patterns 'GET /,POST /' -stride 4 -in payload.bin
//	impala-sim -patterns needle -text 'haystack needle'
//	impala-sim -patterns needle -in payload.bin -chunk 1460   # streaming path
//	impala-sim -patterns needle -in payload.bin -chunk 1460 -ops :8080   # + live /metrics
//	impala-sim -patterns needle -in payload.bin -tier         # hybrid DFA fast-path tier
//	impala-sim -load machine.impala -in payload.bin -tier     # use the artifact's sealed plan
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"impala/internal/arch"
	"impala/internal/artifact"
	"impala/internal/automata"
	"impala/internal/backend"
	"impala/internal/bitvec"
	"impala/internal/core"
	"impala/internal/dfa"
	"impala/internal/obs"
	"impala/internal/regexc"
	"impala/internal/score"
	"impala/internal/shard"
	"impala/internal/sim"
)

func main() {
	var (
		nfaFile  = flag.String("nfa", "", "transformed automaton JSON (from impalac -o)")
		loadFile = flag.String("load", "", "sealed compiled artifact (from impalac -o machine.impala): skip compilation entirely")
		verbose  = flag.Bool("v", false, "with -load: print the artifact header (version, design point, shape, compile stages)")
		bitFile  = flag.String("bitstream", "", "device configuration (from impalac -bitstream): run at the capsule level")
		patterns = flag.String("patterns", "", "comma-separated regexes to compile on the fly")
		stride   = flag.Int("stride", 4, "stride for on-the-fly compilation")
		caMode   = flag.Bool("ca", false, "CA design point for on-the-fly compilation")
		inFile   = flag.String("in", "", "input stream file")
		text     = flag.String("text", "", "inline input text (alternative to -in)")
		workers  = flag.Int("workers", 1, "parallel input-splitting replicas (graph simulator only)")
		overlap  = flag.Int("overlap", -1, "segment overlap bytes for -workers (-1 = derive from match span)")
		quiet    = flag.Bool("q", false, "suppress per-match lines, print summary only")
		trace    = flag.Bool("trace", false, "print per-cycle active-state traces (graph simulator only)")
		engine   = flag.String("engine", "compiled", "graph simulator engine: compiled (bit-parallel) or scalar (reference)")
		chunk    = flag.Int("chunk", 0, "drive the streaming path, feeding the input in chunks of N bytes (0 = batch)")
		ops      = flag.String("ops", "", "serve the ops endpoint (/metrics JSON, /debug/vars, /debug/pprof) on this address and keep serving after the run")
		tier     = flag.Bool("tier", false, "execute on the hybrid tier plan: DFA fast path for components that determinize within budget, bit-parallel NFA for the rest (uses the artifact's sealed plan with -load)")
	)
	flag.Parse()

	if *verbose {
		if *loadFile == "" {
			fatal(fmt.Errorf("-v requires -load"))
		}
		if err := printArtifactInfo(*loadFile); err != nil {
			fatal(err)
		}
		if *inFile == "" && *text == "" {
			return
		}
	}

	// The ops endpoint turns on the live stream counters and keeps the
	// process up after the run so the final state stays scrapeable.
	holdOps := func() {}
	if *ops != "" {
		reg := obs.NewRegistry()
		sim.EnableMetrics(reg)
		arch.EnableMetrics(reg)
		dfa.EnableMetrics(reg)
		shard.EnableMetrics(reg)
		score.EnableMetrics(reg)
		_, url, err := obs.Serve(*ops, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ops: serving /metrics and /debug/pprof on %s\n", url)
		holdOps = func() {
			fmt.Fprintf(os.Stderr, "ops: run complete; serving on %s until interrupted\n", url)
			select {}
		}
	}
	defer holdOps()

	var input []byte
	var err error
	switch {
	case *inFile != "":
		input, err = os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
	case *text != "":
		input = []byte(*text)
	default:
		fatal(fmt.Errorf("one of -in, -text is required"))
	}

	if *bitFile != "" {
		f, err := os.Open(*bitFile)
		if err != nil {
			fatal(err)
		}
		m, err := arch.ReadConfig(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		var reports []sim.Report
		var stats arch.ActivityStats
		if *chunk > 0 {
			s := m.NewSession(func(r sim.Report) { reports = append(reports, r) })
			feedChunks(s.Feed, input, *chunk)
			s.Flush()
			sim.SortReports(reports)
			stats = s.Activity()
		} else {
			reports, stats = m.Run(input)
		}
		if !*quiet {
			for _, r := range reports {
				fmt.Printf("match: pattern %d at byte %d\n", r.Code, r.BitPos/8)
			}
		}
		fmt.Printf("input: %d bytes, %d cycles (%d bits/cycle, capsule level)\n",
			len(input), stats.Cycles, m.Bits*m.Stride)
		fmt.Printf("reports: %d   local switch activations: %d   cross-block signals: %d\n",
			len(reports), stats.LocalSwitchActivations, stats.CrossBlockSignals)
		return
	}

	nfa, sealed, weights, err := loadAutomaton(*loadFile, *nfaFile, *patterns, *stride, *caMode)
	if err != nil {
		fatal(err)
	}
	// A scored artifact (SCOR section) runs on the weighted engine: reports
	// print with their accumulated score, threshold rejects are summarized.
	if weights != nil {
		if *tier || *workers > 1 || *trace || *engine != "compiled" {
			fatal(fmt.Errorf("scored artifacts run on the scored engine only (no -tier, -workers, -trace, -engine)"))
		}
		runScored(nfa, weights, input, *chunk, *quiet)
		return
	}
	var tiered *dfa.Tiered
	if *tier {
		if sealed != nil {
			tiered, err = dfa.Unseal(nfa, sealed)
		} else {
			tiered, err = dfa.BuildTiered(nfa, dfa.TierOptions{})
		}
		if err != nil {
			fatal(err)
		}
		p := tiered.Plan()
		fmt.Fprintf(os.Stderr, "tier plan: %d/%d components on the DFA fast path (%d DFA states)\n",
			p.DFACCs(), len(p.CCs), p.DFAStates)
	}
	makeCore := func() sim.Core {
		if tiered != nil {
			return tiered.NewCore()
		}
		switch *engine {
		case "scalar":
			e, err := sim.NewEngine(nfa)
			if err != nil {
				fatal(err)
			}
			return e
		case "compiled":
			c, err := sim.Compile(nfa)
			if err != nil {
				fatal(err)
			}
			return c.NewEngine()
		default:
			fatal(fmt.Errorf("unknown -engine %q (want compiled or scalar)", *engine))
			return nil
		}
	}
	// Batch and streaming share the session core; -chunk only changes how
	// the input reaches Feed.
	runOnce := func(tracer sim.Tracer) ([]sim.Report, sim.Stats) {
		var reports []sim.Report
		s := sim.NewSession(makeCore(), func(r sim.Report) { reports = append(reports, r) })
		s.SetTracer(tracer)
		if *chunk > 0 {
			feedChunks(s.Feed, input, *chunk)
		} else {
			s.Feed(input)
		}
		s.Flush()
		sim.SortReports(reports)
		return reports, s.Stats()
	}
	if *trace {
		reports, stats := runOnce(&cycleTracer{})
		fmt.Printf("input: %d bytes, %d cycles, %d reports\n", len(input), stats.Cycles, len(reports))
		return
	}
	if *workers > 1 {
		var reports []sim.Report
		var err error
		if tiered != nil {
			reports, err = tiered.RunParallel(input, *workers)
		} else {
			reports, err = sim.RunParallel(nfa, input, *workers, *overlap)
		}
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			for _, r := range reports {
				fmt.Printf("match: pattern %d at byte %d\n", r.Code, r.BitPos/8)
			}
		}
		fmt.Printf("input: %d bytes across %d workers, %d reports\n", len(input), *workers, len(reports))
		return
	}
	reports, stats := runOnce(nil)
	if !*quiet {
		for _, r := range reports {
			fmt.Printf("match: pattern %d at byte %d\n", r.Code, r.BitPos/8)
		}
	}
	if *chunk > 0 {
		fmt.Printf("input: %d bytes streamed in %d-byte chunks, %d cycles (%d bits/cycle)\n",
			len(input), *chunk, stats.Cycles, nfa.BitsPerCycle())
	} else {
		fmt.Printf("input: %d bytes, %d cycles (%d bits/cycle)\n", len(input), stats.Cycles, nfa.BitsPerCycle())
	}
	fmt.Printf("reports: %d   active/cycle avg: %.2f   peak active: %d\n",
		stats.Reports, stats.ActivePerCycleAvg, stats.PeakActive)
}

// runScored executes the weighted engine over the input, batch or chunked,
// printing each threshold-clearing report with its max-plus score.
func runScored(nfa *automata.NFA, w *automata.Weights, input []byte, chunk int, quiet bool) {
	c, err := score.Compile(nfa, w)
	if err != nil {
		fatal(err)
	}
	var reports []score.Report
	var stats sim.Stats
	if chunk > 0 {
		s := c.NewSession(func(r score.Report) { reports = append(reports, r) })
		feedChunks(s.Feed, input, chunk)
		s.Flush()
		score.SortReports(reports)
		stats = s.Stats()
	} else {
		reports, stats = c.Run(input)
	}
	if !quiet {
		for _, r := range reports {
			fmt.Printf("match: pattern %d at byte %d score %g\n", r.Code, r.BitPos/8, r.Score)
		}
	}
	fmt.Printf("input: %d bytes, %d cycles (%d bits/cycle, scored)\n", len(input), stats.Cycles, nfa.BitsPerCycle())
	fmt.Printf("reports: %d cleared threshold %g   scalar-scored states: %d\n",
		len(reports), c.Threshold(), c.ScalarScoredStates())
}

// feedChunks drives feed over input in chunks of at most size bytes.
func feedChunks(feed func([]byte), input []byte, size int) {
	for off := 0; off < len(input); off += size {
		end := off + size
		if end > len(input) {
			end = len(input)
		}
		feed(input[off:end])
	}
}

// cycleTracer prints a compact per-cycle activity line.
type cycleTracer struct{}

func (cycleTracer) OnCycle(cycle int, enabled, active bitvec.Words) {
	ids := make([]int, 0, 8)
	active.ForEach(func(i int) {
		if len(ids) < 8 {
			ids = append(ids, i)
		}
	})
	fmt.Printf("cycle %5d: enabled %4d active %4d %v\n", cycle, enabled.Count(), active.Count(), ids)
}

// printArtifactInfo prints the artifact header without decoding the
// automaton body (the whole file is still checksum-verified).
func printArtifactInfo(path string) error {
	info, err := artifact.StatFile(path)
	if err != nil {
		return err
	}
	m := info.Meta
	design := fmt.Sprintf("%d-bit stride-%d", m.Bits, m.Stride)
	if m.CAMode {
		design += " (CA)"
	}
	fmt.Printf("artifact        : %s (v%d, %d bytes)\n", path, info.Version, info.SizeBytes)
	fmt.Printf("backend         : %s\n", m.BackendName())
	fmt.Printf("design point    : %s, placement seed %d\n", design, m.Seed)
	if m.CreatedUnix != 0 {
		fmt.Printf("created         : %s\n", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Printf("input automaton : %d states, %d transitions\n", m.OriginalStates, m.OriginalTransitions)
	fmt.Printf("compiled        : %d states, %d transitions, %d G4 groups\n", m.States, m.Transitions, m.Groups)
	if m.TierCCs > 0 {
		fmt.Printf("tier plan       : %d/%d components on the DFA fast path (%d DFA states)\n",
			m.TierDFACCs, m.TierCCs, m.TierDFAStates)
	}
	if m.ScoredEdges > 0 {
		fmt.Printf("score table     : %d weighted edges, threshold %g\n", m.ScoredEdges, m.ScoreThreshold)
	}
	for _, st := range info.Stages {
		fmt.Printf("stage %-16s: %6d states, %7d transitions  (wall %s, cpu %s)\n",
			st.Name, st.States, st.Transitions, st.Duration.Round(0), st.CPUTime.Round(0))
	}
	names := make([]string, 0, len(info.Sections))
	for name := range info.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("section %s    : %d bytes\n", name, info.Sections[name])
	}
	return nil
}

// loadAutomaton resolves the automaton source; artifacts additionally
// surface their sealed tier plan and weight table (nil when the artifact
// carries none).
func loadAutomaton(loadFile, nfaFile, patterns string, stride int, caMode bool) (*automata.NFA, *dfa.Sealed, *automata.Weights, error) {
	if loadFile != "" {
		a, err := artifact.LoadFile(loadFile)
		if err != nil {
			return nil, nil, nil, err
		}
		// The simulator executes the Impala engines; artifacts sealed for
		// another backend would run under the wrong hardware model.
		if got := a.Meta.BackendName(); got != backend.DefaultName {
			return nil, nil, nil, fmt.Errorf("artifact %s was sealed for backend %q, this simulator runs %q: %w",
				loadFile, got, backend.DefaultName, backend.ErrMismatch)
		}
		return a.NFA, a.Tier, a.Score, nil
	}
	if nfaFile != "" {
		data, err := os.ReadFile(nfaFile)
		if err != nil {
			return nil, nil, nil, err
		}
		var n automata.NFA
		if err := json.Unmarshal(data, &n); err != nil {
			return nil, nil, nil, err
		}
		return &n, nil, nil, nil
	}
	if patterns == "" {
		return nil, nil, nil, fmt.Errorf("one of -nfa, -patterns is required")
	}
	var rules []regexc.Rule
	for i, p := range strings.Split(patterns, ",") {
		rules = append(rules, regexc.Rule{Pattern: p, Code: i})
	}
	n, err := regexc.Compile(rules)
	if err != nil {
		return nil, nil, nil, err
	}
	bits := 4
	if caMode {
		bits = 8
	}
	res, err := core.Compile(n, core.Config{TargetBits: bits, StrideDims: stride})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.NFA, nil, nil, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "impala-sim:", err)
	os.Exit(1)
}
