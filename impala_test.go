package impala

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"impala/internal/automata"
	"impala/internal/bitvec"
)

func TestCompileRegexAndRun(t *testing.T) {
	m, err := CompileRegex([]string{"GET /", "POST /", `\d+\.\d+`}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	matches := m.Run([]byte("GET /index 12.5 POST /x"))
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	wantGET := Match{End: 5, Pattern: 0}
	found := false
	for _, mt := range matches {
		if mt == wantGET {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET match missing: %v", matches)
	}
}

func TestRunAgreesWithSimulate(t *testing.T) {
	m, err := CompileRegex([]string{"ab+c", "x[yz]"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		input := make([]byte, 1+r.Intn(50))
		for i := range input {
			input[i] = "abcxyz"[r.Intn(6)]
		}
		hw := m.Run(input)
		sw, err := m.Simulate(input)
		if err != nil {
			t.Fatal(err)
		}
		if len(hw) != len(sw) {
			t.Fatalf("hw=%v sw=%v", hw, sw)
		}
		for i := range hw {
			if hw[i] != sw[i] {
				t.Fatalf("hw=%v sw=%v", hw, sw)
			}
		}
	}
}

func TestAllDesignPoints(t *testing.T) {
	patterns := []string{"hello", "wor[lk]d"}
	input := []byte("say hello world work")
	re := regexp.MustCompile("hello|wor[lk]d")
	want := len(re.FindAllString(string(input), -1))
	for _, cfg := range []Config{
		{StrideDims: 1},
		{StrideDims: 2},
		{StrideDims: 4},
		{StrideDims: 8},
		{StrideDims: 1, CAMode: true},
		{StrideDims: 2, CAMode: true},
	} {
		m, err := CompileRegex(patterns, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		got := m.Run(input)
		if len(got) != want {
			t.Fatalf("%+v: matches = %v, want %d", cfg, got, want)
		}
	}
}

func TestModel(t *testing.T) {
	m, err := CompileRegex([]string{"abcdef"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	md := m.Model()
	if md.BitsPerCycle != 16 || md.ThroughputGbps < 79 || md.ThroughputGbps > 81 {
		t.Fatalf("model = %+v", md)
	}
	if md.States == 0 || md.OriginalStates != 6 || md.G4s != 1 {
		t.Fatalf("model = %+v", md)
	}
	if md.AreaMM2 <= 0 || md.ThroughputPerMM2 <= 0 || md.BitstreamBytes <= 0 {
		t.Fatalf("model = %+v", md)
	}
	if len(md.CompileStages) == 0 {
		t.Fatal("no compile stages")
	}
}

func TestCompileRegexErrors(t *testing.T) {
	if _, err := CompileRegex(nil, DefaultConfig()); err == nil {
		t.Fatal("empty pattern list accepted")
	}
	if _, err := CompileRegex([]string{"("}, DefaultConfig()); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := CompileRegex([]string{"a"}, Config{StrideDims: 3}); err == nil {
		t.Fatal("bad stride accepted")
	}
}

func TestCompileAutomaton(t *testing.T) {
	n := automata.New(8, 1)
	n.AddChain([]bitvec.ByteSet{bitvec.ByteRange('a', 'c'), bitvec.ByteOf('!')}, automata.StartAllInput, 9)
	m, err := CompileAutomaton(n, Config{StrideDims: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Run([]byte("xa!b!"))
	if len(got) != 2 || got[0].Pattern != 9 {
		t.Fatalf("matches = %v", got)
	}
}

func ExampleCompileRegex() {
	m, err := CompileRegex([]string{"needle"}, DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, match := range m.Run([]byte("haystack needle haystack")) {
		fmt.Printf("pattern %d ends at byte %d\n", match.Pattern, match.End)
	}
	// Output: pattern 0 ends at byte 15
}

func TestCompileANMLFacade(t *testing.T) {
	doc := `<automata-network id="t">
	  <state-transition-element id="a" symbol-set="h" start="all-input">
	    <activate-on-match element="b"/>
	  </state-transition-element>
	  <state-transition-element id="b" symbol-set="i">
	    <report-on-match reportcode="5"/>
	  </state-transition-element>
	</automata-network>`
	m, err := CompileANML(strings.NewReader(doc), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Run([]byte("say hi twice: hi"))
	if len(got) != 2 || got[0].Pattern != 5 || got[0].End != 6 {
		t.Fatalf("matches = %v", got)
	}
	if _, err := CompileANML(strings.NewReader("not xml"), DefaultConfig()); err == nil {
		t.Fatal("bad ANML accepted")
	}
}

func TestRunParallelFacade(t *testing.T) {
	m, err := CompileRegex([]string{"needle"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte("haystack needle "), 50)
	seq := m.Run(input)
	par, err := m.RunParallel(input, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 50 || len(par) != len(seq) {
		t.Fatalf("seq=%d par=%d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}

// A Stream fed arbitrary chunk partitions must observe exactly the matches
// of the batch paths, with absolute end offsets, and be reusable after
// Reset. Several streams share one compiled machine.
func TestStreamMatchesRun(t *testing.T) {
	m, err := CompileRegex([]string{"GET /", "POST /", "needle"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	corpus := []byte(strings.Repeat("GET /a needle POST /b xyzneedle ", 8))
	want := m.Run(corpus)
	wantSet := map[Match]bool{}
	for _, mt := range want {
		wantSet[mt] = true
	}

	for trial := 0; trial < 6; trial++ {
		var got []Match
		s := m.NewStream(func(mt Match) { got = append(got, mt) })
		for pass := 0; pass < 2; pass++ {
			got = nil
			for pos := 0; pos < len(corpus); {
				sz := 1 + r.Intn(9)
				if sz > len(corpus)-pos {
					sz = len(corpus) - pos
				}
				s.Feed(corpus[pos : pos+sz])
				pos += sz
			}
			s.Flush()
			if len(got) != len(want) {
				t.Fatalf("trial %d pass %d: stream %d matches, batch %d\nstream: %v\nbatch:  %v",
					trial, pass, len(got), len(want), got, want)
			}
			for _, mt := range got {
				if !wantSet[mt] {
					t.Fatalf("trial %d: stream produced %+v not in batch set", trial, mt)
				}
			}
			s.Reset()
		}
	}
}

// Stream implements io.Writer, so any byte pipeline can terminate in the
// matcher; matches fire during Copy.
func TestStreamAsWriter(t *testing.T) {
	m, err := CompileRegex([]string{"abc"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	s := m.NewStream(func(Match) { count++ })
	var w io.Writer = s
	if _, err := io.Copy(w, bytes.NewReader([]byte("xxabcxxabc"))); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if count != 2 {
		t.Fatalf("stream saw %d matches, want 2", count)
	}
}

// Many concurrent streams over one machine must not interfere: the compiled
// form is immutable and shared, stream state is private.
func TestConcurrentStreams(t *testing.T) {
	m, err := CompileRegex([]string{"abc", "cba"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte(strings.Repeat("abc", 50)),
		[]byte(strings.Repeat("cba", 50)),
		[]byte(strings.Repeat("xyz", 50)),
	}
	wants := make([]int, len(inputs))
	for i, in := range inputs {
		wants[i] = len(m.Run(in))
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			in, want := inputs[g%len(inputs)], wants[g%len(inputs)]
			count := 0
			s := m.NewStream(func(Match) { count++ })
			for k := 0; k < 20; k++ {
				count = 0
				for i := 0; i < len(in); i += 7 {
					end := i + 7
					if end > len(in) {
						end = len(in)
					}
					s.Feed(in[i:end])
				}
				s.Flush()
				if count != want {
					done <- fmt.Errorf("goroutine %d run %d: %d matches, want %d", g, k, count, want)
					return
				}
				s.Reset()
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFlushClearsStreamDedup pins the Flush half of the stream-reuse
// contract: Flush must retire the per-window match-dedup entries, so a
// reused stream can never suppress a legitimate repeat of an earlier match
// (same end offset, same pattern) in a later run.
func TestFlushClearsStreamDedup(t *testing.T) {
	m, err := CompileRegex([]string{"needle"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := m.NewStream(func(mt Match) { got = append(got, mt) })

	input := []byte("xx needle yy")
	s.Feed(input)
	s.Flush()
	if len(got) != 1 {
		t.Fatalf("first run: %d matches, want 1: %v", len(got), got)
	}
	first := got[0]
	if s.curCycle != -1 || len(s.seen) != 0 {
		t.Fatalf("Flush left dedup state behind: curCycle %d, %d seen entries", s.curCycle, len(s.seen))
	}

	// Reuse the stream on the identical input: the same (End, Pattern)
	// must be reported again, not swallowed by stale window entries.
	s.Reset()
	s.Feed(input)
	s.Flush()
	if len(got) != 2 {
		t.Fatalf("reused stream: %d matches total, want 2: %v", len(got), got)
	}
	if got[1] != first {
		t.Fatalf("repeat match diverges: %+v vs %+v", got[1], first)
	}
}

// TestArtifactRoundTripFacade is the deployment-model acceptance property
// at the facade level: a machine saved as an artifact and loaded back in a
// fresh process state matches byte-identically across every execution path
// and reports the same model.
func TestArtifactRoundTripFacade(t *testing.T) {
	m, err := CompileRegex([]string{"GET /", "ab+a", `\d\d`}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	input := []byte("GET /abba 42 abbba GET / 7x19")
	if want, got := m.Run(input), loaded.Run(input); !matchesEqual(want, got) {
		t.Fatalf("Run diverges: %v vs %v", got, want)
	}
	if want, got := m.Match(input), loaded.Match(input); !matchesEqual(want, got) {
		t.Fatalf("Match diverges: %v vs %v", got, want)
	}
	ws, err := m.Simulate(input)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := loaded.Simulate(input)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(ws, gs) {
		t.Fatalf("Simulate diverges: %v vs %v", gs, ws)
	}

	var streamGot []Match
	s := loaded.NewStream(func(mt Match) { streamGot = append(streamGot, mt) })
	for i := 0; i < len(input); i += 5 {
		end := i + 5
		if end > len(input) {
			end = len(input)
		}
		s.Feed(input[i:end])
	}
	s.Flush()
	if want := m.Match(input); !matchesEqual(want, streamGot) {
		t.Fatalf("loaded stream diverges: %v vs %v", streamGot, want)
	}

	wm, lm := m.Model(), loaded.Model()
	if lm.States != wm.States || lm.OriginalStates != wm.OriginalStates ||
		lm.G4s != wm.G4s || lm.BitsPerCycle != wm.BitsPerCycle ||
		lm.ThroughputGbps != wm.ThroughputGbps || lm.BitstreamBytes != wm.BitstreamBytes {
		t.Fatalf("model diverges:\nloaded %+v\nwant   %+v", lm, wm)
	}
	if len(lm.CompileStages) != len(wm.CompileStages) {
		t.Fatalf("stage trace lost: %d vs %d stages", len(lm.CompileStages), len(wm.CompileStages))
	}
	wb, ws2 := m.Geometry()
	lb, ls2 := loaded.Geometry()
	if wb != lb || ws2 != ls2 {
		t.Fatalf("geometry diverges: %d/%d vs %d/%d", lb, ls2, wb, ws2)
	}

	// A loaded machine re-saves to the identical byte stream.
	var buf2 bytes.Buffer
	if err := loaded.SaveArtifact(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-saved artifact not byte-identical: %d vs %d bytes", buf2.Len(), buf.Len())
	}
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTieredMachineFacade(t *testing.T) {
	patterns := []string{"GET /", "a.{12}b", `\d\d`, "needle"}
	cfg := DefaultConfig()
	plain, err := CompileRegex(patterns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tier = true
	cfg.TierBudget = 1024
	tiered, err := CompileRegex(patterns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := tiered.TierInfo()
	if info == nil || info.DFACCs == 0 {
		t.Fatalf("tiered machine has no DFA tier: %+v", info)
	}
	if plain.TierInfo() != nil {
		t.Fatal("untiered machine reports a tier plan")
	}

	input := []byte("GET /x aXXXXXXXXXXXXb 42 needle GET / needle 77")
	want := plain.Match(input)
	if got := tiered.Match(input); !matchesEqual(want, got) {
		t.Fatalf("tiered Match diverges: %v vs %v", got, want)
	}
	got, err := tiered.RunParallel(input, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(want, got) {
		t.Fatalf("tiered RunParallel diverges: %v vs %v", got, want)
	}

	var streamGot []Match
	s := tiered.NewStream(func(mt Match) { streamGot = append(streamGot, mt) })
	for i := 0; i < len(input); i += 3 {
		end := i + 3
		if end > len(input) {
			end = len(input)
		}
		s.Feed(input[i:end])
	}
	s.Flush()
	if !matchesEqual(want, streamGot) {
		t.Fatalf("tiered stream diverges: %v vs %v", streamGot, want)
	}

	// The plan travels inside the artifact: a loaded machine keeps the
	// fast path and the identical plan.
	var buf bytes.Buffer
	if err := tiered.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	linfo := loaded.TierInfo()
	if linfo == nil || *linfo != *info {
		t.Fatalf("tier plan diverges across artifact: %+v vs %+v", linfo, info)
	}
	if got := loaded.Match(input); !matchesEqual(want, got) {
		t.Fatalf("loaded tiered Match diverges: %v vs %v", got, want)
	}
	// And the loaded machine re-saves byte-identically (v2 sections are
	// deterministic too).
	var buf2 bytes.Buffer
	if err := loaded.SaveArtifact(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("tiered artifact save(load(save)) not byte-identical")
	}
}

func TestShardedMachineFacade(t *testing.T) {
	patterns := []string{"GET /", "a.{12}b", `\d\d`, "needle", "zz.?zz"}
	cfg := DefaultConfig()
	plain, err := CompileRegex(patterns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	cfg.Tier = true
	cfg.TierBudget = 1024
	sharded, err := CompileRegex(patterns, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := sharded.ShardInfo()
	if info == nil || info.Shards != 4 {
		t.Fatalf("sharded machine has no shard plan: %+v", info)
	}
	if info.TieredShards == 0 || info.DFAStates == 0 {
		t.Fatalf("per-shard tiering bought no fast path: %+v", info)
	}
	if plain.ShardInfo() != nil {
		t.Fatal("unsharded machine reports a shard plan")
	}

	input := []byte("GET /x aXXXXXXXXXXXXb 42 needle zzAzz GET / needle 77")
	want := plain.Match(input)
	if got := sharded.Match(input); !matchesEqual(want, got) {
		t.Fatalf("sharded Match diverges: %v vs %v", got, want)
	}
	got, err := sharded.RunParallel(input, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(want, got) {
		t.Fatalf("sharded RunParallel diverges: %v vs %v", got, want)
	}

	var streamGot []Match
	s := sharded.NewStream(func(mt Match) { streamGot = append(streamGot, mt) })
	for i := 0; i < len(input); i += 3 {
		end := i + 3
		if end > len(input) {
			end = len(input)
		}
		s.Feed(input[i:end])
	}
	s.Flush()
	if !matchesEqual(want, streamGot) {
		t.Fatalf("sharded stream diverges: %v vs %v", streamGot, want)
	}

	// The partition travels inside the artifact: a loaded machine keeps
	// the shard engines, the per-shard fast paths and the identical plan.
	var buf bytes.Buffer
	if err := sharded.SaveArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	linfo := loaded.ShardInfo()
	if linfo == nil || *linfo != *info {
		t.Fatalf("shard plan diverges across artifact: %+v vs %+v", linfo, info)
	}
	if loaded.Config().Shards != 4 || !loaded.Config().Tier {
		t.Fatalf("loaded config loses sharding: %+v", loaded.Config())
	}
	if got := loaded.Match(input); !matchesEqual(want, got) {
		t.Fatalf("loaded sharded Match diverges: %v vs %v", got, want)
	}
	var buf2 bytes.Buffer
	if err := loaded.SaveArtifact(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("sharded artifact save(load(save)) not byte-identical")
	}
}
